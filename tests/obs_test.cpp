// Tests for the unified observability layer (src/obs/): histogram
// bucketing, metrics registry JSON, span nesting via open/close, sink
// install/restore, the Chrome trace-event exporter, thread isolation of
// the per-world sinks, and end-to-end emission through the chaos harness
// (runtime comms + store checkpoints + executor steps/restores in one
// captured trace).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/report.h"
#include "harness/sweeper.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_sink.h"

namespace rgml::obs {
namespace {

// ---- histograms -----------------------------------------------------------

TEST(Histogram, BucketsCountAndOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (bounds are inclusive upper edges)
  h.observe(3.0);   // bucket 2
  h.observe(100.0); // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  ASSERT_EQ(h.bucketCounts().size(), 4u);
  EXPECT_EQ(h.bucketCounts()[0], 2);
  EXPECT_EQ(h.bucketCounts()[1], 0);
  EXPECT_EQ(h.bucketCounts()[2], 1);
  EXPECT_EQ(h.bucketCounts()[3], 1);
}

TEST(Histogram, BoundsMustStrictlyIncrease) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a({1.0, 2.0});
  a.observe(0.5);
  Histogram b({1.0, 2.0});
  b.observe(1.5);
  b.observe(9.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.sum(), 11.0);
  EXPECT_EQ(a.bucketCounts()[0], 1);
  EXPECT_EQ(a.bucketCounts()[1], 1);
  EXPECT_EQ(a.bucketCounts()[2], 1);

  Histogram mismatched({3.0});
  mismatched.observe(1.0);
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);

  // Merging into a never-used default histogram adopts the source.
  Histogram fresh;
  fresh.merge(a);
  EXPECT_EQ(fresh.count(), 3);
  EXPECT_EQ(fresh.upperBounds(), a.upperBounds());
}

TEST(Histogram, EdgeObservationsLandDeterministically) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(-5.0);  // below the first edge: still the first bucket
  h.observe(0.0);
  h.observe(1.0);  // exactly on an edge: the edge's own bucket (inclusive)
  h.observe(2.0);
  h.observe(4.0);  // exactly on the last finite edge: not overflow
  h.observe(4.0000001);  // just past it: overflow
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.bucketCounts(), (std::vector<long>{3, 1, 1, 1}));
}

TEST(Histogram, MismatchedBucketLayoutsFailLoudlyThroughRegistryMerge) {
  // A fold of registries whose histograms disagree on bucket layout must
  // throw, not silently produce garbage percentiles.
  MetricsRegistry a;
  a.histogram("lat", {1.0, 2.0}).observe(0.5);
  MetricsRegistry b;
  b.histogram("lat", {1.0, 2.0, 4.0}).observe(0.5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);

  MetricsRegistry shifted;
  shifted.histogram("lat", {1.5, 2.0}).observe(0.5);
  EXPECT_THROW(a.merge(shifted), std::invalid_argument);

  // Same layout merges fine even with other metrics around.
  MetricsRegistry ok;
  ok.histogram("lat", {1.0, 2.0}).observe(1.5);
  a.merge(ok);
  EXPECT_EQ(a.histograms().at("lat").count(), 2);
}

TEST(Histogram, FromPartsValidatesShapeAndTotals) {
  const Histogram h =
      Histogram::fromParts({1.0, 2.0}, {1, 2, 3}, 6, 10.5);
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 10.5);
  EXPECT_EQ(h.bucketCounts(), (std::vector<long>{1, 2, 3}));

  // Wrong bucket-vector size for the bounds.
  EXPECT_THROW((void)Histogram::fromParts({1.0, 2.0}, {1, 2}, 3, 0.0),
               std::invalid_argument);
  // Buckets that don't sum to the claimed count.
  EXPECT_THROW((void)Histogram::fromParts({1.0, 2.0}, {1, 2, 3}, 7, 0.0),
               std::invalid_argument);
  // Negative bucket counts.
  EXPECT_THROW((void)Histogram::fromParts({1.0, 2.0}, {-1, 2, 3}, 4, 0.0),
               std::invalid_argument);
  // Bounds must still strictly increase.
  EXPECT_THROW((void)Histogram::fromParts({2.0, 1.0}, {0, 0, 0}, 0, 0.0),
               std::invalid_argument);
}

// ---- registry -------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndMerge) {
  MetricsRegistry r;
  r.add("steps");
  r.add("steps", 4);
  r.add("bytes", 100);
  r.set("progress", 0.5);
  EXPECT_EQ(r.counter("steps"), 5u);
  EXPECT_EQ(r.counter("missing"), 0u);

  MetricsRegistry other;
  other.add("steps", 10);
  other.set("progress", 0.9);
  other.histogram("lat", {1.0}).observe(0.2);
  r.merge(other);
  EXPECT_EQ(r.counter("steps"), 15u);
  EXPECT_DOUBLE_EQ(r.gauges().at("progress"), 0.9);
  EXPECT_EQ(r.histograms().at("lat").count(), 1);
}

TEST(MetricsRegistry, JsonIsSortedAndComplete) {
  MetricsRegistry r;
  r.add("zebra", 2);
  r.add("alpha", 1);
  r.set("gauge.x", 1.25);
  r.histogram("h", {1.0, 2.0}).observe(1.5);
  const std::string json = r.toJson();
  // std::map ordering: "alpha" prints before "zebra".
  EXPECT_LT(json.find("\"alpha\": 1"), json.find("\"zebra\": 2"));
  EXPECT_NE(json.find("\"gauge.x\": 1.25"), std::string::npos);
  EXPECT_NE(json.find("\"h\": {\"count\": 1, \"sum\": 1.5"),
            std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [1, 2]"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [0, 1, 0]"), std::string::npos);
}

// ---- spans and sinks ------------------------------------------------------

TEST(TraceSink, OpenCloseRecordsNestingDepths) {
  TraceSink sink;
  const std::size_t outer = sink.open(Category::Step, "outer", 1, 0, 1.0);
  const std::size_t inner =
      sink.open(Category::CheckpointSave, "inner", 1, 0, 2.0);
  sink.span(Category::Comms, "leaf", 1, 0, 2.5, 2.6, 64);
  sink.close(inner, 3.0, 128, {{"k", "v"}});
  sink.close(outer, 4.0);
  EXPECT_EQ(sink.openCount(), 0u);

  const auto& spans = sink.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_DOUBLE_EQ(spans[0].endTime, 4.0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].bytes, 128u);
  EXPECT_EQ(spans[1].arg("k"), "v");
  EXPECT_EQ(spans[2].name, "leaf");
  EXPECT_EQ(spans[2].depth, 2);  // emitted while two spans were open
  EXPECT_EQ(spans[2].bytes, 64u);
}

TEST(TraceSink, AbandonOpenMarksAborted) {
  TraceSink sink;
  sink.open(Category::Step, "step", 7, 1, 1.0);
  sink.open(Category::Restore, "restore", 7, 1, 2.0);
  sink.abandonOpen(9.0);
  EXPECT_EQ(sink.openCount(), 0u);
  for (const Span& s : sink.spans()) {
    EXPECT_DOUBLE_EQ(s.endTime, 9.0);
    EXPECT_EQ(s.arg("aborted"), "true");
  }
}

TEST(TraceSink, ScopeInstallsAndRestores) {
  EXPECT_EQ(TraceSink::current(), nullptr);
  TraceSink outer;
  {
    SinkScope outerScope(&outer);
    EXPECT_EQ(TraceSink::current(), &outer);
    TraceSink inner;
    {
      SinkScope innerScope(&inner);
      EXPECT_EQ(TraceSink::current(), &inner);
    }
    EXPECT_EQ(TraceSink::current(), &outer);
    {
      SinkScope off(nullptr);  // e.g. golden runs inside a traced sweep
      EXPECT_EQ(TraceSink::current(), nullptr);
    }
    EXPECT_EQ(TraceSink::current(), &outer);
  }
  EXPECT_EQ(TraceSink::current(), nullptr);
}

TEST(TraceSink, ThreadsHaveIsolatedSinks) {
  // thread_local current sink: concurrent scopes on different threads must
  // never observe each other (run under TSan via the tsan label).
  TraceSink a, b;
  std::thread ta([&] {
    SinkScope scope(&a);
    for (int i = 0; i < 100; ++i) {
      TraceSink::current()->instant(Category::Comms, "a", i, 0, i * 1.0);
    }
  });
  std::thread tb([&] {
    SinkScope scope(&b);
    for (int i = 0; i < 100; ++i) {
      TraceSink::current()->instant(Category::Comms, "b", i, 1, i * 1.0);
    }
  });
  ta.join();
  tb.join();
  ASSERT_EQ(a.spans().size(), 100u);
  ASSERT_EQ(b.spans().size(), 100u);
  for (const Span& s : a.spans()) EXPECT_EQ(s.name, "a");
  for (const Span& s : b.spans()) EXPECT_EQ(s.name, "b");
  EXPECT_EQ(TraceSink::current(), nullptr);
}

// ---- Chrome trace exporter ------------------------------------------------

TEST(ChromeTrace, ExportIsWellFormed) {
  TraceLane lane;
  lane.pid = 3;
  lane.name = "linreg shrink[it5@p1]";
  Span s;
  s.category = Category::Step;
  s.name = "step";
  s.iteration = 5;
  s.place = 2;
  s.startTime = 1.5;
  s.endTime = 2.0;
  s.bytes = 42;
  s.args = {{"mode", "shrink"}};
  lane.spans.push_back(s);

  const std::string json = toChromeTraceJson({lane});
  for (const char* needle :
       {"\"traceEvents\"", "\"process_name\"",
        "\"name\": \"linreg shrink[it5@p1]\"", "\"thread_name\"",
        "\"name\": \"place 2\"", "\"ph\": \"X\"", "\"cat\": \"step\"",
        "\"ts\": 1500000", "\"dur\": 500000", "\"pid\": 3, \"tid\": 2",
        "\"iteration\": 5", "\"bytes\": 42", "\"mode\": \"shrink\"",
        "\"displayTimeUnit\": \"ms\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }
  // Balanced braces/brackets — cheap structural sanity without a parser.
  long braces = 0, brackets = 0;
  bool inString = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) inString = !inString;
    if (inString) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// ---- end-to-end emission through the harness ------------------------------

harness::SweepOptions tracedOptions() {
  harness::SweepOptions opt;
  opt.apps = {harness::AppKind::LinReg};
  opt.iterations = 10;
  opt.places = 4;
  opt.spares = 2;
  opt.checkpointInterval = 4;
  opt.allVictims = false;
  opt.captureTraces = true;
  return opt;
}

harness::FaultSchedule killSchedule(framework::RestoreMode mode) {
  harness::FaultSchedule schedule;
  schedule.mode = mode;
  harness::KillEvent kill;
  kill.trigger = harness::KillEvent::Trigger::Iteration;
  kill.at = 6;  // after the first committed checkpoint (interval 4)
  kill.victim = 1;
  schedule.kills.push_back(kill);
  return schedule;
}

long countByName(const std::vector<Span>& spans, const std::string& name) {
  long n = 0;
  for (const Span& s : spans) n += s.name == name;
  return n;
}

TEST(ObsIntegration, ScenarioTraceCoversAllThreeLayers) {
  harness::ChaosSweeper sweeper(tracedOptions());
  const harness::ScenarioOutcome out = sweeper.runScenario(
      harness::AppKind::LinReg, killSchedule(framework::RestoreMode::Shrink));
  ASSERT_EQ(out.kind, harness::OutcomeKind::Ok) << out.detail;
  ASSERT_FALSE(out.spans.empty());

  // Executor layer: one step span per executed iteration (10 + 2 replayed
  // after the rollback to iteration 4... at least the nominal 10), each
  // annotated with the restore mode.
  EXPECT_GE(countByName(out.spans, "step"), 10);
  // Store layer: checkpoint umbrellas with real payload bytes.
  EXPECT_GE(countByName(out.spans, "store.snapshot"), 2);
  bool sawSaveBytes = false;
  for (const Span& s : out.spans) {
    if (s.name == "store.save" && s.bytes > 0) sawSaveBytes = true;
  }
  EXPECT_TRUE(sawSaveBytes);
  // Runtime layer: data messages between places.
  EXPECT_GT(countByName(out.spans, "comm") +
                countByName(out.spans, "data-transfer"),
            0);

  // The failure and its recovery, fully attributed.
  ASSERT_EQ(countByName(out.spans, "failure"), 1);
  bool sawRestore = false;
  for (const Span& s : out.spans) {
    if (s.name != "restore") continue;
    sawRestore = true;
    EXPECT_EQ(s.arg("mode"), "shrink");
    EXPECT_EQ(s.arg("victim"), "1");
    EXPECT_GT(s.duration(), 0.0);
  }
  EXPECT_TRUE(sawRestore);

  // Metrics folded alongside the spans.
  EXPECT_GE(out.metrics.counter("executor.steps"), 10u);
  EXPECT_GE(out.metrics.counter("checkpoint.commits"), 2u);
  EXPECT_EQ(out.metrics.counter("executor.failures"), 1u);
  EXPECT_EQ(out.metrics.counter("restore.count"), 1u);
  EXPECT_GT(out.metrics.counter("comms.data_msgs"), 0u);
}

TEST(ObsIntegration, RestorePathNamesDistinguishGridChanges) {
  // Shrink keeps the checkpointed grid (dead place's blocks reassigned):
  // the matrix restore must take — and label — the block-by-block path.
  harness::ChaosSweeper sweeper(tracedOptions());
  const harness::ScenarioOutcome shrank = sweeper.runScenario(
      harness::AppKind::LinReg, killSchedule(framework::RestoreMode::Shrink));
  ASSERT_EQ(shrank.kind, harness::OutcomeKind::Ok) << shrank.detail;
  EXPECT_GT(countByName(shrank.spans, "restore.block-by-block"), 0);
  EXPECT_EQ(countByName(shrank.spans, "restore.repartitioned"), 0);

  // ShrinkRebalance repartitions over the surviving places: the same
  // failure must now take the overlap-region path.
  const harness::ScenarioOutcome rebalanced = sweeper.runScenario(
      harness::AppKind::LinReg,
      killSchedule(framework::RestoreMode::ShrinkRebalance));
  ASSERT_EQ(rebalanced.kind, harness::OutcomeKind::Ok) << rebalanced.detail;
  EXPECT_GT(countByName(rebalanced.spans, "restore.repartitioned"), 0);
}

TEST(ObsIntegration, DivergenceReportsCarryTraceTails) {
  // A sweep that fails while tracing attaches the tail of the failing
  // scenario's trace to its divergence entry — the post-mortem payload.
  harness::SweepOptions opt = tracedOptions();
  opt.modes = {framework::RestoreMode::Shrink};
  opt.shrinkFailures = false;
  // An impossible tolerance makes every compared scenario "diverge" —
  // cheaper than a broken app and exercises the same reporting path.
  opt.tolerance = -1.0;
  const harness::SweepResult result = harness::ChaosSweeper(opt).run();
  ASSERT_FALSE(result.failures.empty());
  EXPECT_FALSE(result.failures.front().spans.empty());
  const std::string json = harness::toJson(result);
  EXPECT_NE(json.find("\"trace_tail\""), std::string::npos);
  EXPECT_NE(json.find("step iter="), std::string::npos);
}

}  // namespace
}  // namespace rgml::obs
