#include "gml/dist_block_matrix.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "apgas/runtime.h"
#include "gml/collectives.h"
#include "la/kernels.h"
#include "la/rand.h"
#include "obs/trace_sink.h"
#include "resilient/restore_overlap.h"

namespace rgml::gml {

using apgas::Place;
using apgas::PlaceGroup;
using apgas::Runtime;
using apgas::ateach;

DistBlockMatrix DistBlockMatrix::makeDense(long m, long n, long rowBlocks,
                                           long colBlocks, long rowPlaces,
                                           long colPlaces,
                                           const PlaceGroup& pg) {
  return makeCommon(m, n, rowBlocks, colBlocks, rowPlaces, colPlaces, pg,
                    /*sparse=*/false, 0);
}

DistBlockMatrix DistBlockMatrix::makeSparse(long m, long n, long rowBlocks,
                                            long colBlocks, long rowPlaces,
                                            long colPlaces, long nnzPerRow,
                                            const PlaceGroup& pg) {
  return makeCommon(m, n, rowBlocks, colBlocks, rowPlaces, colPlaces, pg,
                    /*sparse=*/true, nnzPerRow);
}

DistBlockMatrix DistBlockMatrix::makeCommon(long m, long n, long rowBlocks,
                                            long colBlocks, long rowPlaces,
                                            long colPlaces,
                                            const PlaceGroup& pg,
                                            bool sparse, long nnzPerRow) {
  if (static_cast<long>(pg.size()) != rowPlaces * colPlaces) {
    throw apgas::ApgasError(
        "DistBlockMatrix: pg.size() != rowPlaces*colPlaces");
  }
  DistBlockMatrix a;
  a.grid_ = la::Grid(m, n, rowBlocks, colBlocks);
  a.map_ = la::DistMap::makeGrid(a.grid_, rowPlaces, colPlaces);
  a.pg_ = pg;
  a.sparse_ = sparse;
  a.nnzPerRowCfg_ = nnzPerRow;
  a.rowBlocksPerPlaceRow_ = std::max<long>(1, rowBlocks / rowPlaces);
  a.allocBlocks();
  return a;
}

void DistBlockMatrix::allocBlocks() {
  blocks_.destroy();
  const la::Grid grid = grid_;
  const la::DistMap map = map_;
  const PlaceGroup pg = pg_;
  const bool sparse = sparse_;
  blocks_ = apgas::PlaceLocalHandle<la::BlockSet>::make(
      pg_, [grid, map, pg, sparse](Place p) {
        auto bs = std::make_shared<la::BlockSet>();
        const long idx = pg.indexOf(p);
        for (long blockId : map.blocksOf(idx)) {
          const long rb = grid.blockRow(blockId);
          const long cb = grid.blockCol(blockId);
          const long h = grid.rowBlockSize(rb);
          const long w = grid.colBlockSize(cb);
          const long r0 = grid.rowBlockStart(rb);
          const long c0 = grid.colBlockStart(cb);
          if (sparse) {
            bs->add(la::MatrixBlock(rb, cb, r0, c0, la::SparseCSR(h, w)));
          } else {
            bs->add(la::MatrixBlock(rb, cb, r0, c0, la::DenseMatrix(h, w)));
          }
        }
        return bs;
      });
}

la::BlockSet& DistBlockMatrix::localBlockSet() const {
  return blocks_.local();
}

std::shared_ptr<la::BlockSet> DistBlockMatrix::blockSetAt(
    apgas::PlaceId p) const {
  return blocks_.atPlace(p);
}

void DistBlockMatrix::initRandom(std::uint64_t seed, double lo, double hi) {
  Runtime& rt = Runtime::world();
  ateach(pg_, [&](Place) {
    for (la::MatrixBlock& block : localBlockSet()) {
      if (sparse_) {
        const std::uint64_t blockSeed =
            seed ^ (0x5851F42D4C957F2DULL *
                    static_cast<std::uint64_t>(
                        grid_.blockId(block.blockRow(), block.blockCol()) +
                        1));
        const long nnzPerRow =
            std::min(nnzPerRowCfg_, block.cols());
        block.sparse() = la::makeUniformSparse(block.rows(), block.cols(),
                                               nnzPerRow, blockSeed, lo, hi);
        rt.chargeSparseFlops(static_cast<double>(block.sparse().nnz()));
      } else {
        la::DenseMatrix& d = block.dense();
        for (long j = 0; j < d.cols(); ++j) {
          const std::uint64_t gc =
              static_cast<std::uint64_t>(block.colOffset() + j);
          for (long i = 0; i < d.rows(); ++i) {
            const std::uint64_t gr =
                static_cast<std::uint64_t>(block.rowOffset() + i);
            d(i, j) = la::hashedUniform(
                seed, gr * static_cast<std::uint64_t>(grid_.cols()) + gc, lo,
                hi);
          }
        }
        rt.chargeDenseFlops(static_cast<double>(d.elements()));
      }
    }
  });
}

void DistBlockMatrix::init(const std::function<double(long, long)>& fn) {
  if (sparse_) {
    throw apgas::ApgasError("DistBlockMatrix::init(fn): dense only");
  }
  Runtime& rt = Runtime::world();
  ateach(pg_, [&](Place) {
    for (la::MatrixBlock& block : localBlockSet()) {
      la::DenseMatrix& d = block.dense();
      for (long j = 0; j < d.cols(); ++j) {
        for (long i = 0; i < d.rows(); ++i) {
          d(i, j) = fn(block.rowOffset() + i, block.colOffset() + j);
        }
      }
      rt.chargeDenseFlops(static_cast<double>(d.elements()));
    }
  });
}

void DistBlockMatrix::initFromCSR(const la::SparseCSR& global) {
  if (!sparse_) {
    throw apgas::ApgasError("DistBlockMatrix::initFromCSR: sparse only");
  }
  if (global.rows() != rows() || global.cols() != cols()) {
    throw apgas::ApgasError("DistBlockMatrix::initFromCSR: shape mismatch");
  }
  Runtime& rt = Runtime::world();
  ateach(pg_, [&](Place) {
    for (la::MatrixBlock& block : localBlockSet()) {
      block.sparse() = global.subMatrix(block.rowOffset(), block.colOffset(),
                                        block.rows(), block.cols());
      rt.chargeLocalCopy(block.bytes());
    }
  });
}

void DistBlockMatrix::initFromDense(const la::DenseMatrix& global) {
  if (sparse_) {
    throw apgas::ApgasError("DistBlockMatrix::initFromDense: dense only");
  }
  if (global.rows() != rows() || global.cols() != cols()) {
    throw apgas::ApgasError("DistBlockMatrix::initFromDense: shape mismatch");
  }
  Runtime& rt = Runtime::world();
  ateach(pg_, [&](Place) {
    for (la::MatrixBlock& block : localBlockSet()) {
      block.dense().copySubFrom(global, block.rowOffset(), block.colOffset(),
                                block.rows(), block.cols(), 0, 0);
      rt.chargeLocalCopy(block.bytes());
    }
  });
}

double DistBlockMatrix::at(long i, long j) const {
  if (i < 0 || i >= rows() || j < 0 || j >= cols()) {
    throw apgas::ApgasError("DistBlockMatrix::at: out of range");
  }
  Runtime& rt = Runtime::world();
  const long rb = grid_.rowBlockOf(i);
  const long cb = grid_.colBlockOf(j);
  const long idx = map_.placeIndexOf(grid_.blockId(rb, cb));
  const Place owner = pg_(static_cast<std::size_t>(idx));
  if (owner.isDead()) throw apgas::DeadPlaceException(owner.id());
  auto bs = blocks_.atPlace(owner.id());
  if (!bs) throw apgas::DeadPlaceException(owner.id());
  const la::MatrixBlock* block = bs->find(rb, cb);
  if (block == nullptr) {
    throw apgas::ApgasError("DistBlockMatrix::at: block missing");
  }
  if (owner != rt.here()) rt.chargeComm(owner, sizeof(double));
  return block->at(i - block->rowOffset(), j - block->colOffset());
}

la::DenseMatrix DistBlockMatrix::toDense() const {
  // Verification helper: gathers without cost accounting.
  la::DenseMatrix out(rows(), cols());
  for (std::size_t s = 0; s < pg_.size(); ++s) {
    const Place owner = pg_(s);
    auto bs = blocks_.atPlace(owner.id());
    if (!bs) throw apgas::DeadPlaceException(owner.id());
    for (const la::MatrixBlock& block : *bs) {
      for (long j = 0; j < block.cols(); ++j) {
        for (long i = 0; i < block.rows(); ++i) {
          out(block.rowOffset() + i, block.colOffset() + j) = block.at(i, j);
        }
      }
    }
  }
  return out;
}

void DistBlockMatrix::scale(double a) {
  Runtime& rt = Runtime::world();
  ateach(pg_, [&](Place) {
    for (la::MatrixBlock& block : localBlockSet()) {
      if (sparse_) {
        block.sparse().scaleValues(a);
        rt.chargeSparseFlops(static_cast<double>(block.sparse().nnz()));
      } else {
        la::scale(block.dense().span(), a);
        rt.chargeDenseFlops(static_cast<double>(block.dense().elements()));
      }
    }
  });
}

void DistBlockMatrix::cellAdd(const DistBlockMatrix& other) {
  if (sparse_ || other.sparse_) {
    throw apgas::ApgasError("DistBlockMatrix::cellAdd: dense only");
  }
  if (!(grid_ == other.grid_) || !(map_ == other.map_) ||
      !(pg_ == other.pg_)) {
    throw apgas::ApgasError(
        "DistBlockMatrix::cellAdd: distributions must match");
  }
  Runtime& rt = Runtime::world();
  ateach(pg_, [&](Place p) {
    auto otherBs = other.blockSetAt(p.id());
    if (!otherBs) throw apgas::DeadPlaceException(p.id());
    for (la::MatrixBlock& block : localBlockSet()) {
      const la::MatrixBlock* src =
          otherBs->find(block.blockRow(), block.blockCol());
      if (src == nullptr) {
        throw apgas::ApgasError("DistBlockMatrix::cellAdd: block missing");
      }
      la::cellAdd(src->dense().span(), block.dense().span());
      rt.chargeDenseFlops(static_cast<double>(block.dense().elements()));
    }
  });
}

double DistBlockMatrix::normF() const {
  const double sumSq = allReduceSum(pg_, [&](Place, long) {
    double acc = 0.0;
    double flops = 0.0;
    for (const la::MatrixBlock& block : localBlockSet()) {
      if (sparse_) {
        for (double v : block.sparse().values()) acc += v * v;
        flops += 2.0 * static_cast<double>(block.sparse().nnz());
      } else {
        acc += la::dot(block.dense().span(), block.dense().span());
        flops += 2.0 * static_cast<double>(block.dense().elements());
      }
    }
    Runtime::world().chargeDenseFlops(flops);
    return acc;
  });
  return std::sqrt(sumSq);
}

std::size_t DistBlockMatrix::totalBytes() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < pg_.size(); ++s) {
    auto bs = blocks_.atPlace(pg_(s).id());
    if (bs) total += bs->bytes();
  }
  return total;
}

double DistBlockMatrix::loadImbalance() const {
  std::size_t maxBytes = 0;
  std::size_t sumBytes = 0;
  for (std::size_t s = 0; s < pg_.size(); ++s) {
    auto bs = blocks_.atPlace(pg_(s).id());
    const std::size_t b = bs ? bs->bytes() : 0;
    maxBytes = std::max(maxBytes, b);
    sumBytes += b;
  }
  if (sumBytes == 0) return 1.0;
  const double mean =
      static_cast<double>(sumBytes) / static_cast<double>(pg_.size());
  return static_cast<double>(maxBytes) / mean;
}

void DistBlockMatrix::remakeSameDist(const PlaceGroup& newPg) {
  if (newPg.size() != pg_.size()) {
    throw apgas::ApgasError(
        "remakeSameDist: new group must have the same size");
  }
  pg_ = newPg;
  allocBlocks();
}

void DistBlockMatrix::remakeShrink(const PlaceGroup& newPg) {
  if (newPg.empty()) throw apgas::ApgasError("remakeShrink: empty group");
  // Translate old place indices to new ones (-1 for dropped places).
  std::vector<long> translation(pg_.size(), -1);
  for (std::size_t i = 0; i < pg_.size(); ++i) {
    translation[i] = newPg.indexOf(pg_.ids()[i]);
  }
  map_ = la::DistMap::remapShrink(map_, translation,
                                  static_cast<long>(newPg.size()));
  pg_ = newPg;
  allocBlocks();
}

void DistBlockMatrix::remakeRebalance(const PlaceGroup& newPg) {
  if (newPg.empty()) throw apgas::ApgasError("remakeRebalance: empty group");
  const long newPlaces = static_cast<long>(newPg.size());
  const long rowBlocks =
      std::min(rows(), rowBlocksPerPlaceRow_ * newPlaces);
  const long colBlocks = std::min(cols(), grid_.colBlocks());
  grid_ = la::Grid(rows(), cols(), rowBlocks, colBlocks);
  map_ = la::DistMap::makeGrid(grid_, newPlaces, 1);
  pg_ = newPg;
  allocBlocks();
}

namespace {
std::shared_ptr<const resilient::SnapshotValue> blockValue(
    const la::MatrixBlock& block, bool sparse) {
  if (sparse) {
    return std::make_shared<resilient::SparseBlockValue>(
        block.sparse(), block.blockRow(), block.blockCol(),
        block.rowOffset(), block.colOffset());
  }
  return std::make_shared<resilient::DenseBlockValue>(
      block.dense(), block.blockRow(), block.blockCol(), block.rowOffset(),
      block.colOffset());
}
}  // namespace

std::shared_ptr<resilient::Snapshot> DistBlockMatrix::makeSnapshot() const {
  auto snapshot = std::make_shared<resilient::Snapshot>(pg_);
  snapshot->setMeta(std::make_shared<resilient::GridMetaValue>(grid_));
  ateach(pg_, [&](Place) {
    for (const la::MatrixBlock& block : localBlockSet()) {
      const long blockId = grid_.blockId(block.blockRow(), block.blockCol());
      snapshot->save(blockId, blockValue(block, sparse_), block.version());
    }
  });
  return snapshot;
}

std::shared_ptr<resilient::Snapshot> DistBlockMatrix::makeDeltaSnapshot(
    const resilient::Snapshot& prev) const {
  // A delta is only meaningful against a snapshot of the same distribution:
  // after a remake (new group and/or grid) block ids and holder places no
  // longer line up, so fall back to a full save.
  if (!(prev.placeGroup() == pg_)) return makeSnapshot();
  auto prevMeta = std::dynamic_pointer_cast<const resilient::GridMetaValue>(
      prev.meta());
  if (!prevMeta || !(prevMeta->grid() == grid_)) return makeSnapshot();

  auto snapshot = std::make_shared<resilient::Snapshot>(pg_);
  snapshot->setMeta(std::make_shared<resilient::GridMetaValue>(grid_));

  // All-clean fast path: every mutating GML op runs a finish rooted here,
  // and its termination acks piggyback the per-place version bumps, so by
  // checkpoint time the root already knows the object's total version sum
  // without extra communication. Versions are monotone, so an unchanged
  // sum over the same block set means no block was touched — the whole
  // entry set is carried forward as pure metadata reuse (zero tasks, zero
  // bytes), matching saveReadOnly's cost without the immutability promise.
  std::uint64_t versionSum = 0;
  std::size_t blockCount = 0;
  for (apgas::PlaceId p : pg_) {
    const auto blocks = blockSetAt(p);
    if (!blocks) {
      versionSum = 0;
      blockCount = 0;
      break;
    }
    for (const la::MatrixBlock& block : *blocks) {
      versionSum += block.version();
      ++blockCount;
    }
  }
  if (blockCount > 0 && blockCount == prev.numEntries() &&
      versionSum == prev.versionSum() && snapshot->carryForwardAll(prev)) {
    return snapshot;
  }

  ateach(pg_, [&](Place) {
    for (const la::MatrixBlock& block : localBlockSet()) {
      const long blockId = grid_.blockId(block.blockRow(), block.blockCol());
      if (!snapshot->carryForward(blockId, prev, block.version())) {
        snapshot->save(blockId, blockValue(block, sparse_), block.version());
      }
    }
  });
  return snapshot;
}

void DistBlockMatrix::restoreSnapshot(const resilient::Snapshot& snapshot) {
  auto meta = std::dynamic_pointer_cast<const resilient::GridMetaValue>(
      snapshot.meta());
  if (!meta) {
    throw apgas::ApgasError(
        "DistBlockMatrix::restoreSnapshot: missing grid metadata");
  }
  // The two restore paths the paper's §VII-C cost analysis contrasts:
  // same grid = whole-block copies; new grid = overlap-region assembly.
  const bool sameGrid = meta->grid() == grid_;
  obs::TraceSink* sink = obs::TraceSink::current();
  std::size_t span = 0;
  if (sink != nullptr) {
    Runtime& rt = Runtime::world();
    span = sink->open(obs::Category::Restore,
                      sameGrid ? "restore.block-by-block"
                               : "restore.repartitioned",
                      -1, static_cast<int>(rt.here().id()), rt.time());
  }
  try {
    if (sameGrid) {
      restoreBlockByBlock(snapshot);
    } else {
      restoreRepartitioned(snapshot, meta->grid());
    }
  } catch (...) {
    if (sink != nullptr) {
      sink->close(span, Runtime::world().time(), 0, {{"aborted", "true"}});
    }
    throw;
  }
  if (sink != nullptr) {
    sink->close(span, Runtime::world().time(), snapshot.totalBytes(),
                {{"path", sameGrid ? "block-by-block" : "repartitioned"},
                 {"entries", std::to_string(snapshot.numEntries())}});
  }
}

void DistBlockMatrix::restoreBlockByBlock(
    const resilient::Snapshot& snapshot) {
  // Same grid as at checkpoint time: every current block exists in the
  // snapshot under its block id; copy it whole (paper §IV-B2).
  ateach(pg_, [&](Place) {
    for (la::MatrixBlock& block : localBlockSet()) {
      const long blockId = grid_.blockId(block.blockRow(), block.blockCol());
      auto value = snapshot.load(blockId);  // charges full payload transfer
      if (sparse_) {
        auto sv =
            std::dynamic_pointer_cast<const resilient::SparseBlockValue>(
                value);
        if (!sv) {
          throw apgas::ApgasError("restore: expected sparse block value");
        }
        block.sparse() = sv->data();
      } else {
        auto dv =
            std::dynamic_pointer_cast<const resilient::DenseBlockValue>(
                value);
        if (!dv) {
          throw apgas::ApgasError("restore: expected dense block value");
        }
        block.dense() = dv->data();
      }
      // The block's content now equals the snapshot entry exactly, so
      // re-stamp it with the saved version: an unmutated block carries
      // forward again at the next delta checkpoint.
      block.setVersion(snapshot.savedVersion(blockId));
    }
  });
}

void DistBlockMatrix::restoreRepartitioned(
    const resilient::Snapshot& snapshot, const la::Grid& oldGrid) {
  // Different grid: each new block overlaps several old blocks. Copy the
  // overlapping sub-regions; for sparse blocks, pre-count the non-zeros of
  // every region to size the new block before filling it (paper §IV-B2).
  Runtime& rt = Runtime::world();
  ateach(pg_, [&](Place p) {
    for (la::MatrixBlock& block : localBlockSet()) {
      const auto regions = resilient::computeOverlaps(
          oldGrid, grid_, block.blockRow(), block.blockCol());
      if (sparse_) {
        // Pass 1: count non-zeros per region (scan cost on this place).
        long totalNnz = 0;
        for (const auto& region : regions) {
          auto located = snapshot.locate(region.oldBlockId);
          auto sv =
              std::dynamic_pointer_cast<const resilient::SparseBlockValue>(
                  located.value);
          if (!sv) {
            throw apgas::ApgasError("restore: expected sparse block value");
          }
          const long count = sv->data().countNonZerosIn(
              region.srcRow, region.srcCol, region.rows, region.cols);
          rt.chargeSparseFlops(static_cast<double>(count));
          totalNnz += count;
        }
        (void)totalNnz;  // sizing information; pasteSubFrom reserves per call
        // Pass 2: extract and paste each sub-region.
        la::SparseCSR fresh(block.rows(), block.cols());
        for (const auto& region : regions) {
          auto located = snapshot.locate(region.oldBlockId);
          auto sv =
              std::static_pointer_cast<const resilient::SparseBlockValue>(
                  located.value);
          la::SparseCSR sub = sv->data().subMatrix(
              region.srcRow, region.srcCol, region.rows, region.cols);
          // Extraction (serialised) at the holder, transfer, then a merge
          // that rewrites the partially-assembled block — the sub-block
          // copying overhead the paper blames for shrink-rebalance's cost
          // (§VII-C).
          rt.chargeSerialization(sub.bytes());
          if (located.holder != p) {
            rt.chargeComm(located.holder, sub.bytes());
          }
          fresh.pasteSubFrom(sub, region.dstRow, region.dstCol);
          rt.chargeSerialization(sub.bytes());
          rt.chargeLocalCopy(fresh.bytes());
        }
        block.sparse() = std::move(fresh);
      } else {
        for (const auto& region : regions) {
          auto located = snapshot.locate(region.oldBlockId);
          auto dv =
              std::dynamic_pointer_cast<const resilient::DenseBlockValue>(
                  located.value);
          if (!dv) {
            throw apgas::ApgasError("restore: expected dense block value");
          }
          const auto bytes = static_cast<std::uint64_t>(region.rows) *
                             static_cast<std::uint64_t>(region.cols) *
                             sizeof(double);
          // Strided sub-block extraction (serialised) at the holder,
          // transfer, strided paste into the new block — two serialisation
          // passes more than whole-block restore.
          rt.chargeSerialization(bytes);
          if (located.holder != p) {
            rt.chargeComm(located.holder, bytes);
          }
          rt.chargeSerialization(bytes);
          block.dense().copySubFrom(dv->data(), region.srcRow, region.srcCol,
                                    region.rows, region.cols, region.dstRow,
                                    region.dstCol);
        }
      }
    }
  });
}

}  // namespace rgml::gml
