// Checked numeric flag parsing: the strict strtod/strtol wrappers must
// accept exactly the full-token numbers and reject everything std::atof
// would silently map to 0 — empty strings, trailing garbage, bare signs,
// and out-of-range values.
#include <gtest/gtest.h>

#include "harness/cli.h"

namespace rgml::harness::cli {
namespace {

TEST(CliParse, ParseDoubleAcceptsFullTokens) {
  double v = -1.0;
  EXPECT_TRUE(parseDouble("0", v));
  EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(parseDouble("1e-3", v));
  EXPECT_DOUBLE_EQ(v, 1e-3);
  EXPECT_TRUE(parseDouble("-2.5", v));
  EXPECT_DOUBLE_EQ(v, -2.5);
  EXPECT_TRUE(parseDouble("+0.125", v));
  EXPECT_DOUBLE_EQ(v, 0.125);
  EXPECT_TRUE(parseDouble("1E6", v));
  EXPECT_DOUBLE_EQ(v, 1e6);
}

TEST(CliParse, ParseDoubleRejectsGarbageLeavingOutUntouched) {
  double v = 42.0;
  EXPECT_FALSE(parseDouble("", v));
  EXPECT_FALSE(parseDouble("abc", v));
  EXPECT_FALSE(parseDouble("1e-3x", v));  // the atof trap: atof says 1e-3
  EXPECT_FALSE(parseDouble("1.5 ", v));   // trailing space is garbage too
  EXPECT_FALSE(parseDouble("-", v));
  EXPECT_FALSE(parseDouble("1e999", v));  // overflow
  EXPECT_EQ(v, 42.0);
}

TEST(CliParse, ParseLongAcceptsFullTokens) {
  long v = -1;
  EXPECT_TRUE(parseLong("0", v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(parseLong("12345", v));
  EXPECT_EQ(v, 12345);
  EXPECT_TRUE(parseLong("-7", v));
  EXPECT_EQ(v, -7);
}

TEST(CliParse, ParseLongRejectsGarbageLeavingOutUntouched) {
  long v = 42;
  EXPECT_FALSE(parseLong("", v));
  EXPECT_FALSE(parseLong("abc", v));
  EXPECT_FALSE(parseLong("12x", v));   // the atol trap: atol says 12
  EXPECT_FALSE(parseLong("3.5", v));   // not an integer token
  EXPECT_FALSE(parseLong("-", v));
  EXPECT_FALSE(parseLong("99999999999999999999", v));  // overflow
  EXPECT_EQ(v, 42);
}

}  // namespace
}  // namespace rgml::harness::cli
