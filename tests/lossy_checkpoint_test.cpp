// Integration tests for lossy/compressed checkpointing: store-level
// checkpoint/restore within the error bound, wire-byte accounting
// (fresh + carried == committed for every mode), delta carry-forward of
// encoded payloads, kill-during-commit and kill-during-restore fallbacks,
// and the executor-level path — including the regression where the
// post-restore store reset used to drop a non-default checkpoint mode.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "apgas/fault_injector.h"
#include "apgas/runtime.h"
#include "framework/resilient_executor.h"
#include "gml/dist_block_matrix.h"
#include "harness/golden.h"
#include "obs/trace_sink.h"
#include "resilient/app_resilient_store.h"

namespace rgml {
namespace {

using apgas::Place;
using apgas::PlaceGroup;
using apgas::Runtime;
using gml::DistBlockMatrix;
using resilient::AppResilientStore;
using resilient::CheckpointMode;
using resilient::LossyConfig;

class LossyCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Runtime::init(6); }

  static DistBlockMatrix makeMatrix() {
    auto m = DistBlockMatrix::makeDense(8, 8, 2, 2, 2, 2,
                                        PlaceGroup::firstPlaces(4));
    m.initRandom(7);
    return m;
  }

  static void checkpoint(AppResilientStore& store, DistBlockMatrix& m,
                         long iter) {
    store.setIteration(iter);
    store.startNewSnapshot();
    store.save(m);
    store.commit();
  }

  static void touchOneBlock(DistBlockMatrix& m) {
    apgas::at(Place(0), [&] {
      la::MatrixBlock* block = m.localBlockSet().find(0, 0);
      ASSERT_NE(block, nullptr);
      block->dense()(0, 0) += 1.0;
    });
  }

  static void expectNear(const la::DenseMatrix& got,
                         const la::DenseMatrix& want, double bound) {
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    const auto g = got.span();
    const auto w = want.span();
    for (std::size_t i = 0; i < g.size(); ++i) {
      EXPECT_LE(std::abs(g[i] - w[i]), bound) << "element " << i;
    }
  }
};

TEST_F(LossyCheckpointTest, RestoreStaysWithinTheErrorBound) {
  const double eb = 1e-6;
  DistBlockMatrix m = makeMatrix();
  AppResilientStore store;
  store.setMode(CheckpointMode::Lossy);
  store.setLossyConfig(LossyConfig{eb});

  const la::DenseMatrix expected = m.toDense();
  checkpoint(store, m, 1);
  m.scale(-3.0);
  store.restore();
  expectNear(m.toDense(), expected, eb);
}

TEST_F(LossyCheckpointTest, LosslessCompressionModeRestoresExactly) {
  DistBlockMatrix m = makeMatrix();
  AppResilientStore store;
  store.setMode(CheckpointMode::Lossy);
  store.setLossyConfig(LossyConfig{0.0});  // compression only

  const la::DenseMatrix expected = m.toDense();
  checkpoint(store, m, 1);
  m.scale(0.0);
  store.restore();
  EXPECT_EQ(m.toDense(), expected);
}

TEST_F(LossyCheckpointTest, FreshPlusCarriedEqualsCommittedInEveryMode) {
  // Wire-byte accounting invariant: whatever the mode encodes or carries,
  // the per-checkpoint fresh/carried split must add up to the committed
  // snapshot's stored (wire) bytes — encoded sizes for the lossy modes,
  // raw sizes otherwise.
  for (const CheckpointMode mode :
       {CheckpointMode::Full, CheckpointMode::ReadOnlyReuse,
        CheckpointMode::Delta, CheckpointMode::Lossy,
        CheckpointMode::DeltaLossy}) {
    SCOPED_TRACE(resilient::toString(mode));
    Runtime::init(6);
    DistBlockMatrix m = makeMatrix();
    AppResilientStore store;
    store.setMode(mode);
    store.setLossyConfig(LossyConfig{1e-6});

    checkpoint(store, m, 1);
    const auto first = store.lastCheckpointStats();
    EXPECT_EQ(first.freshBytes + first.carriedBytes,
              store.committedBytes());
    EXPECT_EQ(first.carriedBytes, 0u);

    touchOneBlock(m);
    checkpoint(store, m, 2);
    const auto second = store.lastCheckpointStats();
    EXPECT_EQ(second.freshBytes + second.carriedBytes,
              store.committedBytes());
    if (resilient::usesDelta(mode)) {
      EXPECT_EQ(second.freshEntries, 1u);
      EXPECT_EQ(second.carriedEntries, 3u);
      EXPECT_GT(second.carriedBytes, 0u);
    } else {
      EXPECT_EQ(second.freshEntries, 4u);
      EXPECT_EQ(second.carriedEntries, 0u);
    }
  }
}

TEST_F(LossyCheckpointTest, EncodedBytesAreTheWireBytesAndShrinkVolume) {
  obs::TraceSink sink;
  obs::SinkScope scope(&sink);

  DistBlockMatrix m = makeMatrix();
  AppResilientStore store;
  store.setMode(CheckpointMode::DeltaLossy);
  store.setLossyConfig(LossyConfig{1e-6});
  checkpoint(store, m, 1);

  const auto stats = store.lastCheckpointStats();
  const std::uint64_t raw = sink.metrics().counter("snapshot.raw_bytes");
  const std::uint64_t encoded =
      sink.metrics().counter("snapshot.encoded_bytes");
  ASSERT_GT(encoded, 0u);
  EXPECT_LT(encoded, raw) << "codec did not shrink smooth dense state";
  // Every stored byte this checkpoint was a fresh encoded byte, so the
  // store's accounting must agree with the codec's own counter.
  EXPECT_EQ(stats.freshBytes, encoded);
  EXPECT_EQ(stats.freshBytes + stats.carriedBytes, store.committedBytes());

  const auto hist = sink.metrics().histograms().find("snapshot.codec_seconds");
  ASSERT_NE(hist, sink.metrics().histograms().end());
  EXPECT_GT(hist->second.count(), 0);
}

TEST_F(LossyCheckpointTest, DeltaLossyCarriesEncodedCleanBlocks) {
  DistBlockMatrix m = makeMatrix();
  AppResilientStore store;
  store.setMode(CheckpointMode::DeltaLossy);
  store.setLossyConfig(LossyConfig{1e-6});

  checkpoint(store, m, 1);
  const auto first = store.lastCheckpointStats();
  checkpoint(store, m, 2);
  const auto second = store.lastCheckpointStats();
  EXPECT_EQ(second.freshEntries, 0u);
  EXPECT_EQ(second.carriedEntries, 4u);
  EXPECT_EQ(second.freshBytes, 0u);
  // Carried entries keep the encoded payload: the carried volume is the
  // first checkpoint's encoded (wire) bytes, not the raw block bytes.
  EXPECT_EQ(second.carriedBytes, first.freshBytes);
}

TEST_F(LossyCheckpointTest, KillBetweenSaveAndCommitFallsBackToLossyMix) {
  const double eb = 1e-9;
  DistBlockMatrix m = makeMatrix();
  AppResilientStore store;
  store.setMode(CheckpointMode::DeltaLossy);
  store.setLossyConfig(LossyConfig{eb});

  checkpoint(store, m, 1);
  touchOneBlock(m);
  const la::DenseMatrix committed = m.toDense();
  checkpoint(store, m, 2);  // committed fresh/carried encoded mix

  // Checkpoint 3 dies between save() and commit(); the half-promoted
  // encoded mix is cancelled and the committed one restores (place 2's
  // entries through their surviving replicas).
  touchOneBlock(m);
  store.setIteration(3);
  store.startNewSnapshot();
  store.save(m);
  Runtime::world().kill(2);
  store.cancelSnapshot();

  EXPECT_EQ(store.latestCommittedIteration(), 2);
  m.remakeSameDist(PlaceGroup({0, 1, 4, 3}));
  store.restore();
  expectNear(m.toDense(), committed, eb);
}

TEST_F(LossyCheckpointTest, CarriedEncodedEntrySurvivesPrimaryHolderDeath) {
  const double eb = 1e-9;
  DistBlockMatrix m = makeMatrix();
  AppResilientStore store;
  store.setMode(CheckpointMode::DeltaLossy);
  store.setLossyConfig(LossyConfig{eb});
  checkpoint(store, m, 1);
  checkpoint(store, m, 2);  // all four entries carried, still encoded

  const la::DenseMatrix expected = m.toDense();
  Runtime::world().kill(1);
  m.remakeSameDist(PlaceGroup({0, 4, 2, 3}));
  store.restore();  // decodes the replica copies of the encoded payloads
  expectNear(m.toDense(), expected, eb);
}

// ---- executor level -------------------------------------------------------

TEST(LossyExecutorTest, MidCheckpointKillConvergesWithinTolerance) {
  // The delta-executor fallback scenario, run through the codec: kill a
  // place inside the second (delta) checkpoint's save, roll back to the
  // previous committed *encoded* checkpoint, and still land within the
  // lossy tolerance of the failure-free result. Also the regression
  // guard for the post-restore store reset: every store.save span —
  // including the checkpoint taken right after the restore — must carry
  // the codec annotation, or the reset silently dropped the mode.
  harness::ChaosAppConfig cfg;
  cfg.iterations = 9;

  Runtime::init(5, apgas::CostModel{}, /*resilientFinish=*/true);
  const harness::GoldenRun golden = harness::runGolden(
      harness::AppKind::PageRank, cfg, 4, 3, harness::makeChaosApp);

  Runtime::init(5, apgas::CostModel{}, /*resilientFinish=*/true);
  auto chaos = harness::makeChaosApp(harness::AppKind::PageRank, cfg,
                                     PlaceGroup::firstPlaces(4));
  chaos->init();

  apgas::FaultInjector injector;
  framework::ExecutorConfig ec;
  ec.places = PlaceGroup::firstPlaces(4);
  ec.spares = {4};
  ec.checkpointInterval = 3;
  ec.mode = framework::RestoreMode::ReplaceRedundant;
  ec.checkpointMode = resilient::CheckpointMode::DeltaLossy;
  ec.lossy.errorBound = 1e-9;
  ec.iterationHook = [&](long iteration) {
    if (iteration == 6) injector.killAtDispatch(1, 2);
  };

  obs::TraceSink sink;
  framework::RunStats stats;
  {
    obs::SinkScope scope(&sink);
    framework::ResilientExecutor executor(ec);
    stats = executor.run(chaos->app(), &injector);
  }

  EXPECT_EQ(stats.failuresHandled, 1);
  EXPECT_EQ(stats.iterationsCompleted, 9);
  const std::string diff =
      harness::compareDigests(golden.result, chaos->digest(), 1e-6);
  EXPECT_EQ(diff, "");

  double restoreEnd = -1.0;
  for (const obs::Span& s : sink.spans()) {
    if (s.name == "store.restore") restoreEnd = s.endTime;
  }
  ASSERT_GE(restoreEnd, 0.0) << "no restore span recorded";
  bool sawPostRestoreSave = false;
  for (const obs::Span& s : sink.spans()) {
    if (s.name != "store.save") continue;
    bool codec = false;
    for (const auto& [key, value] : s.args) {
      codec = codec || (key == "codec" && value == "lossy");
    }
    EXPECT_TRUE(codec) << "store.save at t=" << s.startTime
                       << " lost the codec (mode dropped by a reset?)";
    sawPostRestoreSave =
        sawPostRestoreSave || s.startTime >= restoreEnd;
  }
  EXPECT_TRUE(sawPostRestoreSave)
      << "expected a post-restore checkpoint save";
}

}  // namespace
}  // namespace rgml
