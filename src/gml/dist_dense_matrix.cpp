#include "gml/dist_dense_matrix.h"

namespace rgml::gml {

DistDenseMatrix DistDenseMatrix::make(long m, long n,
                                      const apgas::PlaceGroup& pg) {
  DistDenseMatrix a;
  a.inner_ = DistBlockMatrix::makeDense(
      m, n, static_cast<long>(pg.size()), 1, static_cast<long>(pg.size()), 1,
      pg);
  return a;
}

la::DenseMatrix& DistDenseMatrix::localBlock() const {
  la::BlockSet& bs = inner_.localBlockSet();
  if (bs.size() != 1) {
    throw apgas::ApgasError("DistDenseMatrix: expected one block per place");
  }
  return bs[0].dense();
}

long DistDenseMatrix::localRowOffset() const {
  la::BlockSet& bs = inner_.localBlockSet();
  if (bs.size() != 1) {
    throw apgas::ApgasError("DistDenseMatrix: expected one block per place");
  }
  return bs[0].rowOffset();
}

void DistDenseMatrix::remake(const apgas::PlaceGroup& newPg) {
  inner_.remakeRebalance(newPg);
}

}  // namespace rgml::gml
