#include "apgas/threads/threads_backend.h"

#include <string>
#include <utility>

#include "apgas/runtime.h"
#include "obs/flight/flight_recorder.h"
#include "obs/flight/stall_watchdog.h"
#include "obs/trace_sink.h"

namespace rgml::apgas::threads {

namespace {
/// Generation counter distinguishing engines: a host thread's cached
/// ThreadCtx belongs to exactly one engine and resets on mismatch, so
/// worlds created and destroyed back-to-back on one thread (sweep jobs)
/// can never see each other's finish stacks.
std::atomic<std::uint64_t> nextEngineId{1};
}  // namespace

/// Per-OS-thread execution state. `place` is fixed for a thread's
/// lifetime — the world-owning thread is place 0, each worker its own
/// place — exactly X10's one-worker-per-place model. The finish stack
/// tracks which FinishState governs asyncs spawned by the code this
/// thread is currently running (task messages carry their governing
/// finish and push it around the body).
struct ThreadsBackend::ThreadCtx {
  std::uint64_t engineId = 0;
  PlaceId place = 0;
  std::vector<std::shared_ptr<FinishState>> finishStack;
};

ThreadsBackend::ThreadCtx& ThreadsBackend::ctx() const {
  thread_local ThreadCtx tls;
  if (tls.engineId != engineId_) {
    tls.engineId = engineId_;
    tls.place = 0;
    tls.finishStack.clear();
  }
  return tls;
}

ThreadsBackend::ThreadsBackend(Runtime& rt, const RuntimeConfig& config)
    : rt_(rt),
      engineId_(nextEngineId.fetch_add(1, std::memory_order_relaxed)),
      t0_(std::chrono::steady_clock::now()) {
  const int numPlaces = config.numPlaces;
  if (config.flightRecorder) {
    flight_ = std::make_unique<obs::flight::FlightRecorder>(
        numPlaces, config.flightRingCapacity);
    // The constructing thread doubles as place 0's worker.
    flight_->bindCurrentThread("p0", 0);
    watchdog_ = std::make_unique<obs::flight::StallWatchdog>(
        *flight_, [this] { return now(); }, config.watchdogPeriodMs / 1e3);
  }
  {
    std::lock_guard<std::mutex> lock(placesMutex_);
    for (int i = 0; i < numPlaces; ++i) places_.emplace_back();
    numPlaces_.store(numPlaces, std::memory_order_release);
  }
  ctx().place = 0;  // the constructing thread serves place 0
  for (PlaceId p = 1; p < numPlaces; ++p) startWorker(p);
  ctrlThread_ = std::thread([this] { ctrlLoop(); });
  if (watchdog_) watchdog_->start();
}

ThreadsBackend::~ThreadsBackend() {
  if (watchdog_) watchdog_->stop();
  shutdown_.store(true, std::memory_order_release);
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(placesMutex_);
    for (auto& ps : places_) {
      wake(ps.inbox);
      if (ps.worker.joinable()) workers.push_back(std::move(ps.worker));
    }
  }
  for (auto& t : workers) t.join();
  {
    std::lock_guard<std::mutex> lock(ctrlMu_);
    ctrlStop_ = true;
  }
  ctrlCv_.notify_all();
  if (ctrlThread_.joinable()) ctrlThread_.join();
}

void ThreadsBackend::startWorker(PlaceId p) {
  place(p).worker = std::thread([this, p] { workerLoop(p); });
}

ThreadsBackend::PlaceState& ThreadsBackend::place(PlaceId p) const {
  std::lock_guard<std::mutex> lock(placesMutex_);
  return places_[static_cast<std::size_t>(p)];
}

int ThreadsBackend::numLivePlaces() const noexcept {
  std::lock_guard<std::mutex> lock(placesMutex_);
  int live = 0;
  for (const auto& ps : places_) {
    if (!ps.dead.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

bool ThreadsBackend::isDead(PlaceId p) const noexcept {
  if (p < 0 || p >= numPlaces()) return false;
  return place(p).dead.load(std::memory_order_acquire);
}

Place ThreadsBackend::here() const { return Place(ctx().place); }

double ThreadsBackend::now() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
      .count();
}

std::vector<PlaceId> ThreadsBackend::addPlaces(int n) {
  std::vector<PlaceId> fresh;
  fresh.reserve(static_cast<std::size_t>(n));
  {
    std::lock_guard<std::mutex> lock(placesMutex_);
    for (int i = 0; i < n; ++i) {
      fresh.push_back(static_cast<PlaceId>(places_.size()));
      places_.emplace_back();
    }
    numPlaces_.store(static_cast<int>(places_.size()),
                     std::memory_order_release);
  }
  if (flight_) flight_->addPlaces(n);  // before the workers can record
  for (PlaceId p : fresh) startWorker(p);
  return fresh;
}

void ThreadsBackend::flightEvent(obs::flight::EventKind kind, int queue,
                                 long depth, double value, double t) const {
  obs::flight::Event e;
  e.t = t;
  e.value = value;
  e.kind = kind;
  e.queue = queue;
  e.depth = depth;
  flight_->record(e);
}

// ---- inbox primitives -----------------------------------------------------

bool ThreadsBackend::push(PlaceId p, TaskMsg msg) {
  PlaceState& ps = place(p);
  if (ps.dead.load(std::memory_order_acquire)) return false;
  if (flight_) msg.enqueuedAt = now();
  long depth = 0;
  {
    std::lock_guard<std::mutex> lock(ps.inbox.mu);
    if (ps.inbox.poisoned) return false;
    ps.inbox.q.push_back(std::move(msg));
    ++ps.inbox.epoch;
    depth = static_cast<long>(ps.inbox.q.size());
  }
  ps.inbox.cv.notify_all();
  if (flight_) {
    flight_->noteEnqueue(static_cast<int>(p), depth);
    flightEvent(obs::flight::EventKind::Enqueue, static_cast<int>(p),
                depth, 0.0, msg.enqueuedAt);
  }
  return true;
}

void ThreadsBackend::wake(Inbox& in) {
  {
    std::lock_guard<std::mutex> lock(in.mu);
    ++in.epoch;
  }
  in.cv.notify_all();
}

bool ThreadsBackend::drainOne(Inbox& in) {
  TaskMsg msg;
  long depth = 0;
  {
    std::lock_guard<std::mutex> lock(in.mu);
    if (in.q.empty()) return false;
    msg = std::move(in.q.front());
    in.q.pop_front();
    depth = static_cast<long>(in.q.size());
  }
  if (flight_) {
    // drainOne always runs on the inbox owner's thread (the worker, or a
    // thread blocked in waitFinish/waitAt draining its own place).
    const int queue = static_cast<int>(ctx().place);
    flight_->noteDequeue(queue, depth);
    const double t = now();
    flightEvent(obs::flight::EventKind::Dequeue, queue, depth,
                t - msg.enqueuedAt, t);
  }
  execute(msg);
  return true;
}

void ThreadsBackend::taskDone(FinishState& fs, Inbox& homeInbox) {
  bool zero = false;
  {
    std::lock_guard<std::mutex> lock(fs.mu);
    zero = --fs.pending == 0;
  }
  if (zero) wake(homeInbox);
}

void ThreadsBackend::execute(TaskMsg& msg) {
  // Run under the spawner's sink so spans/metrics land in the right
  // scenario regardless of which thread executes the closure.
  obs::SinkScope sinkScope(msg.sink);
  ThreadCtx& c = ctx();

  if (msg.at) {
    std::exception_ptr err;
    if (isDead(msg.target)) {
      err = std::make_exception_ptr(DeadPlaceException(msg.target));
    } else {
      c.finishStack.push_back(msg.fs);  // origin's finish (may be null)
      try {
        msg.body();
      } catch (...) {
        err = std::current_exception();
      }
      c.finishStack.pop_back();
      if (!err && isDead(msg.target)) {
        err = std::make_exception_ptr(DeadPlaceException(msg.target));
      }
    }
    std::shared_ptr<AtState> st = msg.at;
    Inbox& originInbox = place(st->origin).inbox;
    st->error = err;  // published by the release store below
    st->done.store(true, std::memory_order_release);
    wake(originInbox);
    return;
  }

  if (isDead(msg.target)) {
    // The place died between enqueue and pop: the task never runs.
    std::lock_guard<std::mutex> lock(msg.fs->mu);
    msg.fs->errors.push_back(
        std::make_exception_ptr(DeadPlaceException(msg.target)));
  } else {
    c.finishStack.push_back(msg.fs);
    try {
      msg.body();
    } catch (...) {
      std::lock_guard<std::mutex> lock(msg.fs->mu);
      msg.fs->errors.push_back(std::current_exception());
    }
    c.finishStack.pop_back();
    if (isDead(msg.target)) {
      // Died while running: its heap effects are gone (kill() wiped it)
      // and the finish must observe the failure.
      std::lock_guard<std::mutex> lock(msg.fs->mu);
      msg.fs->errors.push_back(
          std::make_exception_ptr(DeadPlaceException(msg.target)));
    } else if (rt_.resilientFinish()) {
      ctrlSend(CtrlMsg::Terminate);  // task termination bookkeeping
    }
  }
  taskDone(*msg.fs, place(msg.fs->home).inbox);
}

// ---- blocking waits (cooperative: drain own inbox) ------------------------

void ThreadsBackend::waitFinish(FinishState& fs, Inbox& own) {
  for (;;) {
    if (drainOne(own)) continue;
    std::uint64_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(own.mu);
      epoch = own.epoch;
    }
    // Epoch captured before the pending check: a completion that lands in
    // between bumps the epoch past `epoch`, so the wait below returns
    // immediately instead of sleeping through the wakeup. A message pushed
    // between drainOne() and the capture is covered by the queue check in
    // the predicate — its epoch bump is already folded into `epoch`, so the
    // epoch comparison alone would sleep through it.
    {
      std::lock_guard<std::mutex> lock(fs.mu);
      if (fs.pending == 0) return;
    }
    const double waitStart = flight_ ? now() : 0.0;
    long depthAfter = 0;
    {
      std::unique_lock<std::mutex> lock(own.mu);
      own.cv.wait(lock,
                  [&] { return own.epoch != epoch || !own.q.empty(); });
      depthAfter = static_cast<long>(own.q.size());
    }
    if (flight_) {
      const double t = now();
      flightEvent(obs::flight::EventKind::InboxWait,
                  static_cast<int>(ctx().place), depthAfter,
                  t - waitStart, t);
    }
  }
}

void ThreadsBackend::waitAt(AtState& st, Inbox& own) {
  for (;;) {
    if (drainOne(own)) continue;
    std::uint64_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(own.mu);
      epoch = own.epoch;
    }
    if (st.done.load(std::memory_order_acquire)) return;
    const double waitStart = flight_ ? now() : 0.0;
    long depthAfter = 0;
    {
      std::unique_lock<std::mutex> lock(own.mu);
      own.cv.wait(lock,
                  [&] { return own.epoch != epoch || !own.q.empty(); });
      depthAfter = static_cast<long>(own.q.size());
    }
    if (flight_) {
      const double t = now();
      flightEvent(obs::flight::EventKind::InboxWait,
                  static_cast<int>(ctx().place), depthAfter,
                  t - waitStart, t);
    }
  }
}

// ---- task model -----------------------------------------------------------

void ThreadsBackend::finish(const std::function<void()>& body) {
  ThreadCtx& c = ctx();
  stats_.finishes.fetch_add(1, std::memory_order_relaxed);
  auto fs = std::make_shared<FinishState>();
  fs->home = c.place;
  const bool resilient = rt_.resilientFinish();
  if (resilient) ctrlSend(CtrlMsg::Register);  // finish registration
  c.finishStack.push_back(fs);
  try {
    body();
  } catch (...) {
    std::lock_guard<std::mutex> lock(fs->mu);
    fs->errors.push_back(std::current_exception());
  }
  Inbox& own = place(c.place).inbox;
  // Flight ack-wait covers the whole close protocol — body returned until
  // every termination and the final ack have been processed. A fan-out
  // finish therefore *contains* the close of every finish it spawned
  // remotely, which is what makes the place-0 serialisation curve
  // (flight_report) monotone in P rather than a scheduler-noise lottery.
  double closeBegin = 0.0;
  if (resilient && flight_) {
    closeBegin = now();
    long spawned = 0;
    {
      std::lock_guard<std::mutex> lock(fs->mu);
      spawned = fs->tasks;
    }
    flightEvent(obs::flight::EventKind::AckWaitBegin,
                static_cast<int>(fs->home), spawned, 0.0, closeBegin);
  }
  waitFinish(*fs, own);
  c.finishStack.pop_back();
  if (resilient) {
    // The finish cannot complete until the control thread has drained
    // every spawn/termination message and acknowledged completion — the
    // paper's place-0 serialisation, now a real blocked wait.
    long tasks = 0;
    {
      std::lock_guard<std::mutex> lock(fs->mu);
      tasks = fs->tasks;
    }
    const double before = now();
    AckWaiter waiter;
    ctrlSend(CtrlMsg::Ack, &waiter);
    {
      std::unique_lock<std::mutex> lock(waiter.mu);
      waiter.cv.wait(lock, [&] { return waiter.done; });
    }
    const double after = now();
    if (flight_) {
      flightEvent(obs::flight::EventKind::AckWaitEnd,
                  static_cast<int>(fs->home), tasks, after - closeBegin,
                  after);
    }
    if (auto* sink = obs::TraceSink::current()) {
      obs::TidScope tidScope(obs::osThreadTag());
      const double blocked = after - before;
      sink->addMetric("finish.count");
      static const std::vector<double> kAckBuckets{1e-6, 1e-5, 1e-4, 1e-3,
                                                   1e-2, 0.1,  1.0};
      sink->observeMetric("finish.ack_wait_seconds", kAckBuckets, blocked);
      if (blocked > 0.0) {
        sink->span(obs::Category::Finish, "finish.ack", -1,
                   static_cast<int>(fs->home), before, after, 0,
                   {{"tasks", std::to_string(tasks)}});
      }
    }
  }
  throwCollected(*fs);
}

void ThreadsBackend::throwCollected(FinishState& fs) {
  std::vector<std::exception_ptr> errors;
  {
    std::lock_guard<std::mutex> lock(fs.mu);
    errors = std::move(fs.errors);
  }
  if (errors.empty()) return;
  if (errors.size() == 1) std::rethrow_exception(errors.front());
  throw MultipleExceptions(std::move(errors));
}

void ThreadsBackend::asyncAt(Place p, const std::function<void()>& body) {
  ThreadCtx& c = ctx();
  if (c.finishStack.empty() || !c.finishStack.back()) {
    throw ApgasError("asyncAt outside any finish scope");
  }
  rt_.noteDispatch();

  stats_.asyncsSpawned.fetch_add(1, std::memory_order_relaxed);
  const PlaceId target = p.id();
  if (target < 0 || target >= numPlaces()) {
    throw ApgasError("asyncAt: no such place");
  }
  std::shared_ptr<FinishState> fs = c.finishStack.back();
  {
    std::lock_guard<std::mutex> lock(fs->mu);
    ++fs->tasks;
    ++fs->pending;
  }
  if (rt_.resilientFinish()) {
    // Spawn bookkeeping is sent before the dead check, exactly as the
    // simulator charges it — the message is in flight either way.
    ctrlSend(CtrlMsg::Spawn);
  }

  TaskMsg msg;
  msg.body = body;
  msg.fs = fs;
  msg.target = target;
  msg.sink = obs::TraceSink::current();
  if (!push(target, std::move(msg))) {
    // Dead or poisoned: the task never runs; the finish observes the
    // failure. (A same-place async lands in our own inbox and runs when
    // this thread blocks — the simulator's deferred-task order.)
    {
      std::lock_guard<std::mutex> lock(fs->mu);
      fs->errors.push_back(
          std::make_exception_ptr(DeadPlaceException(target)));
    }
    taskDone(*fs, place(fs->home).inbox);
  }
}

void ThreadsBackend::at(Place p, const std::function<void()>& body) {
  const PlaceId target = p.id();
  if (target < 0 || target >= numPlaces()) {
    throw ApgasError("at: no such place");
  }
  ThreadCtx& c = ctx();
  if (target == c.place) {
    if (isDead(target)) throw DeadPlaceException(target);
    body();
    if (isDead(target)) throw DeadPlaceException(target);
    return;
  }
  if (isDead(target)) throw DeadPlaceException(target);

  auto st = std::make_shared<AtState>();
  st->origin = c.place;
  TaskMsg msg;
  msg.body = body;
  msg.fs = c.finishStack.empty() ? nullptr : c.finishStack.back();
  msg.at = st;
  msg.target = target;
  msg.sink = obs::TraceSink::current();
  if (!push(target, std::move(msg))) throw DeadPlaceException(target);
  waitAt(*st, place(c.place).inbox);
  if (st->error) std::rethrow_exception(st->error);
}

// ---- failure --------------------------------------------------------------

bool ThreadsBackend::kill(PlaceId p) {
  PlaceState& ps = place(p);
  if (ps.dead.exchange(true, std::memory_order_acq_rel)) return false;
  // Kill events land in the *calling* thread's lane (kill() is legal
  // from foreign threads, which auto-register an "ext" lane).
  if (flight_) {
    flightEvent(obs::flight::EventKind::Kill, static_cast<int>(p), 0, 0.0,
                now());
  }
  rt_.wipeHeap(p);
  if (flight_) {
    flightEvent(obs::flight::EventKind::HeapWipe, static_cast<int>(p), 0,
                0.0, now());
  }
  stats_.placesKilled.fetch_add(1, std::memory_order_relaxed);
  if (auto* sink = obs::TraceSink::current()) {
    obs::TidScope tidScope(obs::osThreadTag());
    sink->instant(obs::Category::Kill, "kill", -1, static_cast<int>(p),
                  now(), 0, {{"victim", std::to_string(p)}});
    sink->addMetric("runtime.places_killed");
  }
  // Poison and drain the inbox: queued work completes exceptionally with
  // DeadPlaceException (GASPI-style failure notification — senders learn
  // through their finish/at, listeners through Runtime::kill's fanout),
  // and the place's worker exits once it observes the poisoned, empty
  // queue.
  std::deque<TaskMsg> orphans;
  {
    std::lock_guard<std::mutex> lock(ps.inbox.mu);
    ps.inbox.poisoned = true;
    orphans.swap(ps.inbox.q);
    ++ps.inbox.epoch;
  }
  ps.inbox.cv.notify_all();
  if (flight_) {
    flight_->markDead(static_cast<int>(p));
    flightEvent(obs::flight::EventKind::Poison, static_cast<int>(p),
                static_cast<long>(orphans.size()), 0.0, now());
  }
  for (TaskMsg& msg : orphans) {
    if (msg.at) {
      msg.at->error =
          std::make_exception_ptr(DeadPlaceException(msg.target));
      msg.at->done.store(true, std::memory_order_release);
      wake(place(msg.at->origin).inbox);
    } else {
      {
        std::lock_guard<std::mutex> lock(msg.fs->mu);
        msg.fs->errors.push_back(
            std::make_exception_ptr(DeadPlaceException(msg.target)));
      }
      taskDone(*msg.fs, place(msg.fs->home).inbox);
    }
  }
  return true;
}

// ---- accounting -----------------------------------------------------------

void ThreadsBackend::chargeComm(Place to, std::uint64_t bytes) {
  ThreadCtx& c = ctx();
  if (isDead(c.place)) return;
  if (to.id() == c.place) return;  // local copy: no message
  stats_.dataMsgs.fetch_add(1, std::memory_order_relaxed);
  stats_.bytesSent.fetch_add(bytes, std::memory_order_relaxed);
  if (auto* sink = obs::TraceSink::current()) {
    obs::TidScope tidScope(obs::osThreadTag());
    const double t = now();
    sink->span(obs::Category::Comms, "comm", -1, static_cast<int>(c.place),
               t, t, bytes, {{"to", std::to_string(to.id())}});
    sink->addMetric("comms.data_msgs");
    sink->addMetric("comms.bytes_sent", bytes);
  }
}

void ThreadsBackend::noteDataTransfer(std::uint64_t bytes) {
  stats_.dataMsgs.fetch_add(1, std::memory_order_relaxed);
  stats_.bytesSent.fetch_add(bytes, std::memory_order_relaxed);
  if (auto* sink = obs::TraceSink::current()) {
    obs::TidScope tidScope(obs::osThreadTag());
    sink->instant(obs::Category::Comms, "data-transfer", -1,
                  static_cast<int>(ctx().place), now(), bytes);
    sink->addMetric("comms.data_msgs");
    sink->addMetric("comms.bytes_sent", bytes);
  }
}

void ThreadsBackend::snapshotStats(RuntimeStats& out) const {
  out.asyncsSpawned = stats_.asyncsSpawned.load(std::memory_order_relaxed);
  out.finishes = stats_.finishes.load(std::memory_order_relaxed);
  out.bookkeepingMsgs =
      stats_.bookkeepingMsgs.load(std::memory_order_relaxed);
  out.dataMsgs = stats_.dataMsgs.load(std::memory_order_relaxed);
  out.bytesSent = stats_.bytesSent.load(std::memory_order_relaxed);
  out.placesKilled = stats_.placesKilled.load(std::memory_order_relaxed);
}

void ThreadsBackend::resetStats() {
  stats_.asyncsSpawned.store(0, std::memory_order_relaxed);
  stats_.finishes.store(0, std::memory_order_relaxed);
  stats_.bookkeepingMsgs.store(0, std::memory_order_relaxed);
  stats_.dataMsgs.store(0, std::memory_order_relaxed);
  stats_.bytesSent.store(0, std::memory_order_relaxed);
  stats_.placesKilled.store(0, std::memory_order_relaxed);
}

// ---- threads --------------------------------------------------------------

void ThreadsBackend::ctrlLoop() {
  // The stand-in for the place-0 finish bookkeeper: one thread drains
  // every Register/Spawn/Terminate message and answers Acks. No
  // artificial per-message delay is added — the serialisation through
  // this single queue *is* the measured cost.
  obs::TidScope tidScope(obs::osThreadTag());
  if (flight_) flight_->bindCurrentThread("ctrl", 1 << 20);
  for (;;) {
    CtrlMsg msg;
    long depth = 0;
    {
      std::unique_lock<std::mutex> lock(ctrlMu_);
      ctrlCv_.wait(lock, [&] { return !ctrlQ_.empty() || ctrlStop_; });
      if (ctrlQ_.empty()) return;
      msg = ctrlQ_.front();
      ctrlQ_.pop_front();
      depth = static_cast<long>(ctrlQ_.size());
    }
    // Counters only on this path: a ctrl event pair per bookkeeping
    // message (2*tasks+2 per resilient finish) would dominate the
    // recorder's budget, and the watchdog needs just the progress row.
    // Ack-wait events capture the end-to-end ctrl latency instead.
    if (flight_) flight_->noteDequeue(obs::flight::kCtrlQueue, depth);
    if (msg.waiter != nullptr) {
      // Notify while holding the waiter's mutex: the waiter lives on the
      // acking thread's stack and is destroyed the moment wait() returns,
      // so an unlocked notify could touch a dead condition_variable. The
      // waiter cannot leave cv.wait until this lock is released.
      std::lock_guard<std::mutex> lock(msg.waiter->mu);
      msg.waiter->done = true;
      msg.waiter->cv.notify_all();
    }
  }
}

void ThreadsBackend::ctrlSend(CtrlMsg::Kind kind, AckWaiter* waiter) {
  stats_.bookkeepingMsgs.fetch_add(1, std::memory_order_relaxed);
  CtrlMsg msg{kind, waiter};
  long depth = 0;
  {
    std::lock_guard<std::mutex> lock(ctrlMu_);
    ctrlQ_.push_back(msg);
    depth = static_cast<long>(ctrlQ_.size());
  }
  ctrlCv_.notify_all();
  if (flight_) flight_->noteEnqueue(obs::flight::kCtrlQueue, depth);
}

void ThreadsBackend::workerLoop(PlaceId p) {
  // Application code on this thread resolves Runtime::world() to the
  // world that owns this engine.
  Runtime::setBorrowed(&rt_);
  ThreadCtx& c = ctx();
  c.place = p;
  obs::TidScope tidScope(obs::osThreadTag());
  if (flight_) {
    flight_->bindCurrentThread("p" + std::to_string(p),
                               static_cast<int>(p));
  }
  Inbox& in = place(p).inbox;
  for (;;) {
    const double waitStart = flight_ ? now() : 0.0;
    long depthAfter = 0;
    {
      std::unique_lock<std::mutex> lock(in.mu);
      in.cv.wait(lock, [&] {
        return !in.q.empty() || in.poisoned ||
               shutdown_.load(std::memory_order_acquire);
      });
      depthAfter = static_cast<long>(in.q.size());
      if (in.q.empty()) break;  // poisoned or shut down
    }
    if (flight_) {
      const double t = now();
      flightEvent(obs::flight::EventKind::InboxWait, static_cast<int>(p),
                  depthAfter, t - waitStart, t);
    }
    drainOne(in);
  }
  Runtime::setBorrowed(nullptr);
}

}  // namespace rgml::apgas::threads
