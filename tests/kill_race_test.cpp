// Regression tests for kill-path thread safety: concurrent kill() +
// in-flight asyncAt, kill-listener registration churn from foreign
// threads, and FaultInjector dispatch-kill arming under real parallelism.
// Carries the "tsan" ctest label so the tsan preset replays every
// interleaving check under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "apgas/fault_injector.h"
#include "apgas/runtime.h"

namespace {

using namespace rgml::apgas;

RuntimeConfig threadsConfig(int places) {
  RuntimeConfig cfg;
  cfg.numPlaces = places;
  cfg.resilientFinish = true;
  cfg.backend = Backend::Threads;
  return cfg;
}

/// Swallow the failure classifications a concurrent kill may surface; any
/// other exception type is a real bug.
template <typename Fn>
void tolerateDeadPlaces(Fn&& fn) {
  try {
    fn();
  } catch (const DeadPlaceException&) {
  } catch (const MultipleExceptions& me) {
    EXPECT_TRUE(me.containsDeadPlace());
  }
}

TEST(KillRaceTest, ConcurrentKillDuringInFlightFanout) {
  Runtime::init(threadsConfig(6));
  // Runtime::world() is thread-local; the killer thread borrows nothing,
  // so it must capture the world by reference from this thread.
  Runtime& rt = Runtime::world();
  std::atomic<bool> go{false};
  std::thread killer([&] {
    while (!go.load()) std::this_thread::yield();
    rt.kill(3);
    rt.kill(5);
  });
  std::atomic<long> completed{0};
  for (int round = 0; round < 50; ++round) {
    if (round == 5) go.store(true);
    tolerateDeadPlaces([&] {
      finish([&] {
        for (int p = 1; p < 6; ++p) {
          asyncAt(Place(p), [&] {
            // Nested fan-out keeps tasks in flight while the kills land.
            finish([&] { async([&] { completed.fetch_add(1); }); });
          });
        }
      });
    });
  }
  killer.join();
  EXPECT_TRUE(rt.isDead(3));
  EXPECT_TRUE(rt.isDead(5));
  EXPECT_GT(completed.load(), 0);
  // The world stays usable on the survivors.
  std::atomic<int> alive{0};
  finish([&] {
    for (int p : {0, 1, 2, 4}) {
      asyncAt(Place(p), [&] { alive.fetch_add(1); });
    }
  });
  EXPECT_EQ(alive.load(), 4);
}

TEST(KillRaceTest, ListenerChurnRacesWithKills) {
  Runtime::init(threadsConfig(8));
  Runtime& rt = Runtime::world();
  std::atomic<bool> stop{false};
  std::atomic<long> notifications{0};
  // Churner: registers and removes listeners while kills fan out.
  std::thread churner([&] {
    while (!stop.load()) {
      std::vector<std::uint64_t> tokens;
      for (int i = 0; i < 8; ++i) {
        tokens.push_back(rt.addKillListener(
            [&notifications](PlaceId) { notifications.fetch_add(1); }));
      }
      for (const auto token : tokens) rt.removeKillListener(token);
    }
  });
  // Killer: a second foreign thread killing a disjoint victim set.
  std::thread killer([&] {
    for (PlaceId p : {7, 6}) rt.kill(p);
  });
  for (PlaceId p : {5, 4}) rt.kill(p);
  killer.join();
  stop.store(true);
  churner.join();
  for (PlaceId p : {4, 5, 6, 7}) EXPECT_TRUE(rt.isDead(p));
  EXPECT_EQ(rt.numLivePlaces(), 4);
  // A listener registered for the whole run sees each kill exactly once.
  std::atomic<long> seen{0};
  rt.addKillListener([&seen](PlaceId) { seen.fetch_add(1); });
  rt.kill(3);
  rt.kill(3);
  EXPECT_EQ(seen.load(), 1);
}

TEST(KillRaceTest, DispatchKillFiresFromConcurrentSpawns) {
  Runtime::init(threadsConfig(4));
  FaultInjector injector;
  // Workers spawn nested asyncs concurrently, so noteDispatch() — and
  // with it the injector's hook — runs from several threads at once.
  injector.killAtDispatch(20, 2);
  injector.killAtDispatch(30, 3);
  Runtime& rt = Runtime::world();
  long survivors = 0;
  for (int round = 0; round < 40 && rt.numLivePlaces() > 1; ++round) {
    tolerateDeadPlaces([&] {
      finish([&] {
        for (int p = 1; p < 4; ++p) {
          if (rt.isDead(p)) continue;
          asyncAt(Place(p), [&] {
            finish([&] {
              async([&] {});
            });
          });
        }
      });
      ++survivors;
    });
  }
  EXPECT_TRUE(rt.isDead(2));
  EXPECT_TRUE(rt.isDead(3));
  EXPECT_EQ(injector.armedDispatchKills(), 0u);
  EXPECT_GT(survivors, 0);
  injector.reset();
}

TEST(KillRaceTest, InjectorResetRacesWithDispatches) {
  Runtime::init(threadsConfig(3));
  for (int round = 0; round < 20; ++round) {
    FaultInjector injector;
    injector.killAtDispatch(1000000, 2);  // armed but never fires
    std::thread resetter([&] { injector.reset(); });
    tolerateDeadPlaces([&] {
      finish([&] {
        for (int p = 0; p < 3; ++p) {
          asyncAt(Place(p), [] {});
        }
      });
    });
    resetter.join();
    EXPECT_EQ(injector.armedDispatchKills(), 0u);
  }
  EXPECT_EQ(Runtime::world().numLivePlaces(), 3);
}

}  // namespace
