#include "la/block_set.h"

namespace rgml::la {

MatrixBlock* BlockSet::find(long rb, long cb) {
  for (auto& b : blocks_) {
    if (b.blockRow() == rb && b.blockCol() == cb) return &b;
  }
  return nullptr;
}

const MatrixBlock* BlockSet::find(long rb, long cb) const {
  for (const auto& b : blocks_) {
    if (b.blockRow() == rb && b.blockCol() == cb) return &b;
  }
  return nullptr;
}

std::size_t BlockSet::bytes() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.bytes();
  return total;
}

double BlockSet::multFlops() const {
  double total = 0.0;
  for (const auto& b : blocks_) total += b.multFlops();
  return total;
}

}  // namespace rgml::la
