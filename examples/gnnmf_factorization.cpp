// Non-negative matrix factorisation under failure: GNNMF carries TWO
// mutable distributed objects (the row-band factor W and the duplicated
// factor H) through a failure, and finishes with the exact same
// factorisation as an uninterrupted run.
//
// Also demonstrates exporting the result factors with the matrix I/O
// helpers (CSV for the dense factor).
//
// Build & run:  ./build/examples/gnnmf_factorization
#include <cmath>
#include <cstdio>
#include <sstream>

#include "apgas/fault_injector.h"
#include "apgas/runtime.h"
#include "apps/gnnmf.h"
#include "apps/gnnmf_resilient.h"
#include "framework/resilient_executor.h"
#include "serialize/matrix_io.h"

int main() {
  using namespace rgml;
  using apgas::PlaceGroup;
  using apgas::Runtime;

  apps::GnnmfConfig config;
  config.rank = 5;
  config.cols = 100;
  config.rowsPerPlace = 500;
  config.nnzPerRow = 8;
  config.iterations = 25;

  // Reference run.
  Runtime::init(5, apgas::CostModel{}, false);
  apps::Gnnmf reference(config, PlaceGroup::world());
  reference.run();
  std::printf("reference: ||V - WH||^2 = %.6f after %ld iterations\n",
              reference.objective(), reference.iteration());

  // Resilient run with a failure at iteration 13.
  Runtime::init(5, apgas::CostModel{}, true);
  apps::GnnmfResilient app(config, PlaceGroup::world());
  app.init();

  apgas::FaultInjector injector;
  injector.killOnIteration(13, 3);

  framework::ExecutorConfig cfg;
  cfg.places = PlaceGroup::world();
  cfg.checkpointInterval = 10;
  cfg.mode = framework::RestoreMode::Shrink;
  framework::ResilientExecutor executor(cfg);
  auto stats = executor.run(app, &injector);

  std::printf("resilient: ||V - WH||^2 = %.6f, %ld failure(s), "
              "%ld steps\n",
              app.objective(), stats.failuresHandled, stats.stepsExecuted);

  // Export the duplicated factor H as CSV (first lines shown).
  std::ostringstream csv;
  apgas::at(apgas::Place(0),
            [&] { serialize::writeCsv(csv, app.h().local()); });
  const std::string text = csv.str();
  std::printf("H factor as CSV: %zu bytes, first line: %.60s...\n",
              text.size(), text.substr(0, text.find('\n')).c_str());

  const double diff = std::abs(app.objective() - reference.objective());
  std::printf("|objective difference| vs reference: %.2e\n", diff);
  return diff < 1e-6 * (1.0 + reference.objective()) ? 0 : 1;
}
