// Tests for the three applications: numerical correctness against serial
// references, convergence behaviour, and exact equivalence between the
// non-resilient and resilient variants (with and without failures).
#include <gtest/gtest.h>

#include <cmath>

#include "apgas/runtime.h"
#include "apps/linreg.h"
#include "apps/linreg_resilient.h"
#include "apps/logreg.h"
#include "apps/logreg_resilient.h"
#include "apps/pagerank.h"
#include "apps/pagerank_resilient.h"
#include "apps/workloads.h"
#include "framework/resilient_executor.h"
#include "la/kernels.h"
#include "la/rand.h"

namespace rgml::apps {
namespace {

using apgas::FaultInjector;
using apgas::Place;
using apgas::PlaceGroup;
using apgas::Runtime;
using framework::ExecutorConfig;
using framework::ResilientExecutor;
using framework::RestoreMode;

LinRegConfig smallLinReg() {
  LinRegConfig cfg;
  cfg.features = 8;
  cfg.rowsPerPlace = 25;
  cfg.blocksPerPlace = 2;
  cfg.lambda = 1e-3;
  cfg.iterations = 20;
  return cfg;
}

LogRegConfig smallLogReg() {
  LogRegConfig cfg;
  cfg.features = 6;
  cfg.rowsPerPlace = 30;
  cfg.blocksPerPlace = 2;
  cfg.eta = 0.05;
  cfg.iterations = 15;
  return cfg;
}

PageRankConfig smallPageRank() {
  PageRankConfig cfg;
  cfg.pagesPerPlace = 25;
  cfg.linksPerPage = 4;
  cfg.blocksPerPlace = 2;
  cfg.iterations = 20;
  cfg.exactGraph = true;
  return cfg;
}

class AppsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Runtime::init(6, apgas::CostModel{}, /*resilientFinish=*/true);
  }

  static ExecutorConfig executorConfig(RestoreMode mode) {
    ExecutorConfig cfg;
    cfg.places = PlaceGroup::firstPlaces(4);
    cfg.spares = {4, 5};
    cfg.checkpointInterval = 10;
    cfg.mode = mode;
    return cfg;
  }
};

// ---- LinReg -----------------------------------------------------------------

TEST_F(AppsTest, LinRegResidualDecreasesMonotonically) {
  LinReg app(smallLinReg(), PlaceGroup::firstPlaces(4));
  app.init();
  double prev = app.residualNormSq();
  for (int i = 0; i < 20; ++i) {
    app.step();
    // Monotone decrease is only meaningful above the convergence floor;
    // once the residual hits rounding noise (~1e-8) it may jitter.
    if (prev > 1e-8) {
      EXPECT_LE(app.residualNormSq(), prev * (1.0 + 1e-9))
          << "CG residual grew at iteration " << i;
    }
    prev = app.residualNormSq();
  }
  // CG on an 8-dimensional system converges long before 20 iterations.
  EXPECT_LT(app.residualNormSq(), 1e-6);
}

TEST_F(AppsTest, LinRegSolvesNormalEquations) {
  auto cfg = smallLinReg();
  cfg.iterations = 30;
  LinReg app(cfg, PlaceGroup::firstPlaces(2));
  app.run();
  // Verify X^T(Xw - y) + lambda w ~ 0 by checking the CG residual.
  EXPECT_LT(std::sqrt(app.residualNormSq()), 1e-5);
  EXPECT_EQ(app.iteration(), 30);
}

TEST_F(AppsTest, LinRegResilientMatchesBaselineNoFailure) {
  LinReg plain(smallLinReg(), PlaceGroup::firstPlaces(4));
  plain.run();

  LinRegResilient resilient(smallLinReg(), PlaceGroup::firstPlaces(4));
  resilient.init();
  ResilientExecutor executor(executorConfig(RestoreMode::Shrink));
  executor.run(resilient);

  apgas::at(Place(0), [&] {
    const la::Vector& a = plain.weights().local();
    const la::Vector& b = resilient.weights().local();
    for (long j = 0; j < a.size(); ++j) EXPECT_NEAR(a[j], b[j], 1e-12);
  });
}

TEST_F(AppsTest, LinRegSurvivesFailureWithIdenticalResult) {
  for (RestoreMode mode : {RestoreMode::Shrink, RestoreMode::ShrinkRebalance,
                           RestoreMode::ReplaceRedundant,
                           RestoreMode::ReplaceElastic}) {
    SCOPED_TRACE(toString(mode));
    Runtime::init(6, apgas::CostModel{}, true);
    LinReg plain(smallLinReg(), PlaceGroup::firstPlaces(4));
    plain.run();
    la::Vector expected;
    apgas::at(Place(0), [&] { expected = plain.weights().local(); });

    Runtime::init(6, apgas::CostModel{}, true);
    LinRegResilient resilient(smallLinReg(), PlaceGroup::firstPlaces(4));
    resilient.init();
    FaultInjector injector;
    injector.killOnIteration(15, 2);
    ResilientExecutor executor(executorConfig(mode));
    auto stats = executor.run(resilient, &injector);
    EXPECT_EQ(stats.failuresHandled, 1);
    EXPECT_EQ(resilient.iteration(), smallLinReg().iterations);

    apgas::at(Place(0), [&] {
      const la::Vector& b = resilient.weights().local();
      for (long j = 0; j < expected.size(); ++j) {
        EXPECT_NEAR(expected[j], b[j], 1e-8);
      }
    });
  }
}

// ---- LogReg -----------------------------------------------------------------

TEST_F(AppsTest, LogRegLossDecreases) {
  LogReg app(smallLogReg(), PlaceGroup::firstPlaces(4));
  app.init();
  app.step();
  const double firstLoss = app.loss();
  for (int i = 0; i < 14; ++i) app.step();
  EXPECT_LT(app.loss(), firstLoss);
  EXPECT_EQ(app.iteration(), 15);
}

TEST_F(AppsTest, LogRegResilientMatchesBaselineNoFailure) {
  LogReg plain(smallLogReg(), PlaceGroup::firstPlaces(4));
  plain.run();
  LogRegResilient resilient(smallLogReg(), PlaceGroup::firstPlaces(4));
  resilient.init();
  ResilientExecutor executor(executorConfig(RestoreMode::Shrink));
  executor.run(resilient);
  EXPECT_NEAR(plain.loss(), resilient.loss(), 1e-12);
  apgas::at(Place(0), [&] {
    const la::Vector& a = plain.weights().local();
    const la::Vector& b = resilient.weights().local();
    for (long j = 0; j < a.size(); ++j) EXPECT_NEAR(a[j], b[j], 1e-12);
  });
}

TEST_F(AppsTest, LogRegSurvivesFailureWithIdenticalResult) {
  LogReg plain(smallLogReg(), PlaceGroup::firstPlaces(4));
  plain.run();
  la::Vector expected;
  apgas::at(Place(0), [&] { expected = plain.weights().local(); });

  Runtime::init(6, apgas::CostModel{}, true);
  LogRegResilient resilient(smallLogReg(), PlaceGroup::firstPlaces(4));
  resilient.init();
  FaultInjector injector;
  injector.killOnIteration(12, 1);
  ResilientExecutor executor(executorConfig(RestoreMode::ShrinkRebalance));
  auto stats = executor.run(resilient, &injector);
  EXPECT_EQ(stats.failuresHandled, 1);
  apgas::at(Place(0), [&] {
    const la::Vector& b = resilient.weights().local();
    for (long j = 0; j < expected.size(); ++j) {
      EXPECT_NEAR(expected[j], b[j], 1e-8);
    }
  });
}

// ---- PageRank ----------------------------------------------------------------

TEST_F(AppsTest, PageRankConservesProbabilityMass) {
  PageRank app(smallPageRank(), PlaceGroup::firstPlaces(4));
  app.init();
  EXPECT_NEAR(app.rankSum(), 1.0, 1e-9);
  for (int i = 0; i < 20; ++i) {
    app.step();
    EXPECT_NEAR(app.rankSum(), 1.0, 1e-9)
        << "rank mass leaked at iteration " << i;
  }
}

TEST_F(AppsTest, PageRankMatchesSerialReference) {
  auto cfg = smallPageRank();
  PageRank app(cfg, PlaceGroup::firstPlaces(4));
  app.run();

  // Serial reference on the identical graph.
  const long n = cfg.pagesPerPlace * 4;
  auto g = la::makeWebGraph(n, cfg.linksPerPage, cfg.seed);
  la::Vector p(n), gp(n);
  p.setAll(1.0 / static_cast<double>(n));
  for (long it = 0; it < cfg.iterations; ++it) {
    la::spmv(g, p.span(), gp.span());
    la::scale(gp.span(), cfg.alpha);
    const double teleport =
        (1.0 - cfg.alpha) * la::sum(p.span()) / static_cast<double>(n);
    for (long i = 0; i < n; ++i) p[i] = gp[i] + teleport;
  }
  apgas::at(Place(0), [&] {
    for (long i = 0; i < n; ++i) {
      EXPECT_NEAR(app.ranks().local()[i], p[i], 1e-12);
    }
  });
}

TEST_F(AppsTest, PageRankSurvivesFailureWithIdenticalResult) {
  PageRank plain(smallPageRank(), PlaceGroup::firstPlaces(4));
  plain.run();
  la::Vector expected;
  apgas::at(Place(0), [&] { expected = plain.ranks().local(); });

  Runtime::init(6, apgas::CostModel{}, true);
  PageRankResilient resilient(smallPageRank(), PlaceGroup::firstPlaces(4));
  resilient.init();
  FaultInjector injector;
  injector.killOnIteration(15, 3);
  ResilientExecutor executor(executorConfig(RestoreMode::Shrink));
  auto stats = executor.run(resilient, &injector);
  EXPECT_EQ(stats.failuresHandled, 1);
  EXPECT_NEAR(resilient.rankSum(), 1.0, 1e-9);
  apgas::at(Place(0), [&] {
    const la::Vector& b = resilient.ranks().local();
    for (long i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(expected[i], b[i], 1e-9);
    }
  });
}

TEST_F(AppsTest, PageRankCheckpointIsCheaperThanDenseApps) {
  // Table III's qualitative claim: PageRank checkpoints ~5x cheaper than
  // LinReg/LogReg because only the rank vector is mutable (the sparse
  // matrix is saveReadOnly and reused after the first checkpoint).
  Runtime& rt = Runtime::world();
  auto pg = PlaceGroup::firstPlaces(4);

  LinRegResilient linreg(smallLinReg(), pg);
  linreg.init();
  resilient::AppResilientStore storeA;
  storeA.setIteration(10);
  linreg.checkpoint(storeA);  // first checkpoint (includes read-only save)
  storeA.setIteration(20);
  const double t0 = rt.time();
  linreg.checkpoint(storeA);  // steady-state checkpoint
  const double linregCost = rt.time() - t0;

  PageRankResilient pagerank(smallPageRank(), pg);
  pagerank.init();
  resilient::AppResilientStore storeB;
  storeB.setIteration(10);
  pagerank.checkpoint(storeB);
  storeB.setIteration(20);
  const double t1 = rt.time();
  pagerank.checkpoint(storeB);
  const double pagerankCost = rt.time() - t1;

  EXPECT_LT(pagerankCost, linregCost);
}

// ---- workload presets ---------------------------------------------------------

TEST(WorkloadsTest, PaperPlaceCounts) {
  const auto counts = paperPlaceCounts();
  EXPECT_EQ(counts.front(), 2);
  EXPECT_EQ(counts.back(), 44);
  EXPECT_EQ(counts.size(), 12u);
}

TEST(WorkloadsTest, BenchConfigsAreWeakScaling) {
  EXPECT_GT(benchLinRegConfig().rowsPerPlace, 0);
  EXPECT_GT(benchLogRegConfig().rowsPerPlace, 0);
  EXPECT_GT(benchPageRankConfig().pagesPerPlace, 0);
  EXPECT_EQ(benchLinRegConfig().iterations, 30);
}

}  // namespace
}  // namespace rgml::apps
