// The Place abstraction of the APGAS model (x10.lang.Place).
#pragma once

#include "apgas/exceptions.h"

namespace rgml::apgas {

/// A place is an abstraction for an OS process holding data and tasks.
/// This is a lightweight value type; liveness is a property of the world
/// (see Runtime::isDead) because a place can die at any time.
class Place {
 public:
  constexpr Place() noexcept : id_(kInvalidPlace) {}
  constexpr explicit Place(PlaceId id) noexcept : id_(id) {}

  [[nodiscard]] constexpr PlaceId id() const noexcept { return id_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return id_ != kInvalidPlace;
  }

  /// Queries the world for liveness. Declared here, defined with Runtime.
  [[nodiscard]] bool isDead() const;

  friend constexpr bool operator==(Place a, Place b) noexcept {
    return a.id_ == b.id_;
  }
  friend constexpr bool operator!=(Place a, Place b) noexcept {
    return a.id_ != b.id_;
  }
  friend constexpr bool operator<(Place a, Place b) noexcept {
    return a.id_ < b.id_;
  }

 private:
  PlaceId id_;
};

}  // namespace rgml::apgas
