# Empty compiler generated dependencies file for fig3_logreg_finish.
# This may be replaced when dependencies are built.
