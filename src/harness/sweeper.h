// The chaos schedule sweeper: exhaustive fault-space exploration with
// golden-result divergence checking.
//
// For every scenario in the cross product {kill point: each iteration
// boundary, plus mid-step dispatch indices} x {victim place} x {restore
// mode} x {application}, the sweeper re-initialises the simulated world,
// arms a FaultInjector with the schedule, runs the application through
// the ResilientExecutor, and classifies the outcome against the cached
// golden (failure-free) run:
//
//   * Ok              — converged to the golden result;
//   * Divergence      — terminated with a different answer (the framework's
//                       core invariant is violated);
//   * NonTermination  — the step budget ran out (a restore that keeps
//                       rewinding, or a kill loop);
//   * LeakedPlaces    — elastically created places left alive outside the
//                       final working group;
//   * ExecutorError   — the executor threw (unexpected for an enumerated
//                       recoverable schedule);
//   * Unrecoverable   — failed for a reason that is *by design*
//                       unrecoverable (no committed checkpoint, or
//                       overlapping kills exceeding the snapshot
//                       replication factor); cleanly fatal, reported but
//                       distinguished from bugs.
//
// Failing schedules are automatically shrunk to a minimal reproducer
// (kills dropped one at a time, dispatch indices lowered) and the
// ready-to-paste FaultInjector setup is attached to the report.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "apgas/runtime_config.h"
#include "harness/golden.h"
#include "harness/schedule.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace rgml::harness {

enum class OutcomeKind {
  Ok,
  Divergence,
  NonTermination,
  LeakedPlaces,
  ExecutorError,
  Unrecoverable,
};

[[nodiscard]] const char* toString(OutcomeKind kind);

/// True for every kind the sweeper treats as a failed scenario (everything
/// except Ok and Unrecoverable).
[[nodiscard]] bool isFailure(OutcomeKind kind);

struct ScenarioOutcome {
  AppKind app = AppKind::LinReg;
  FaultSchedule schedule;
  OutcomeKind kind = OutcomeKind::Ok;
  std::string detail;              ///< first difference / exception text
  long firstDivergentIteration = -1;  ///< from the diagnosis rerun; -1 n/a
  long failuresHandled = 0;
  /// Iteration the executor rolled back to on the run's LAST handled
  /// failure (-1 = no failure). Backend-independent — the equivalence
  /// harness asserts Simulated and Threads agree on it.
  long restoredTo = -1;
  /// Lossy checkpoint modes only: extra iterations stepped after the
  /// nominal run for the app's convergence metric to return to the golden
  /// final level (0 = already there at termination; -1 = not measured —
  /// exact modes, failure-free runs, or apps without a metric).
  long reconvergeIterations = -1;
  double restoreMs = 0.0;          ///< simulated ms spent restoring
  double totalMs = 0.0;            ///< simulated ms of the whole run
  /// For failures: the shrunk schedule and its FaultInjector setup.
  FaultSchedule minimalReproducer;
  std::string reproducerSetup;
  /// Captured only when SweepOptions::captureTraces is set: the scenario's
  /// span trace (executor steps, store saves/commits/restores, runtime
  /// comms) and folded metrics. Spans carry simulated time only, so they
  /// are identical at any job count.
  std::vector<obs::Span> spans;
  obs::MetricsRegistry metrics;
  /// Threads-backend failures and Unrecoverable outcomes only: the flight
  /// recorder's forensic dump ({"flight": ...} JSON — last-N events per
  /// thread, queue-depth series, watchdog stall verdicts), captured from
  /// the scenario's world right after classification. Empty otherwise.
  std::string flightDump;
};

struct SweepOptions {
  std::vector<AppKind> apps{AppKind::LinReg};
  std::vector<framework::RestoreMode> modes = allRestoreModes();
  long iterations = 12;
  std::size_t places = 6;   ///< working group size (place 0 included)
  std::size_t spares = 2;   ///< reserve for ReplaceRedundant
  long checkpointInterval = 4;
  /// Include mid-step killAtDispatch points derived from the golden run's
  /// dispatch counts (one early and one mid-iteration point per sampled
  /// iteration).
  bool midStepKills = false;
  /// Sweep every victim in 1..places-1; false = sample {1, places-1}.
  bool allVictims = true;
  /// Add two-kill schedules (distinct iterations and victims).
  bool pairKills = false;
  /// Snapshot replication factor k for every scenario's executor (copies
  /// per store entry; 2 = the paper's double in-memory storage).
  int replication = 2;
  /// Checkpoint mode for every scenario's executor. The lossy modes get a
  /// dedicated golden-comparison path: a restored run that differs from
  /// the golden digest only within `lossyTolerance` classifies Ok, with
  /// the measured iterations-to-reconverge attached to the outcome.
  resilient::CheckpointMode checkpointMode = resilient::CheckpointMode::Delta;
  /// Absolute error bound for the lossy codec (<= 0 = lossless
  /// compression only). Only meaningful with a lossy checkpointMode.
  double lossyErrorBound = 0.0;
  /// Golden-comparison tolerance for lossy-restored runs (digest compare
  /// + reconvergence target: metric <= golden + lossyTolerance * scale).
  double lossyTolerance = 1e-3;
  /// When >= 2: add schedules killing this many *adjacent* places
  /// simultaneously at each iteration point — the worst case for
  /// ring-placed replicas. At replication k, simultaneousKills <= k-1
  /// must classify Ok and simultaneousKills == k must classify
  /// unrecoverable-by-design (never divergence).
  std::size_t simultaneousKills = 0;
  /// Add kill-during-restore schedules: an iteration kill followed by a
  /// second kill fired at the start of the resulting restore attempt.
  bool restoreKills = false;
  /// Shrink failing schedules to minimal reproducers.
  bool shrinkFailures = true;
  /// Install a per-scenario TraceSink around the executor run and attach
  /// the captured spans/metrics to each ScenarioOutcome (report trace
  /// tails, writeChromeTrace, writeMetricsJson).
  bool captureTraces = false;
  double tolerance = 1e-6;
  /// Execution backend for the scenario runs. The golden (failure-free)
  /// oracle ALWAYS runs on the simulated backend regardless of this
  /// setting, so a Threads sweep is checked against the deterministic
  /// reference. Note: dispatch-kill offsets (midStepKills) fire at a
  /// racy point under Threads — their *classification* stays meaningful
  /// but scenario-to-scenario placement is no longer reproducible, so
  /// cross-backend equivalence corpora stick to iteration/restore kills.
  apgas::Backend backend = apgas::Backend::Simulated;
  /// Step budget = stepBudgetFactor * iterations (+ a constant slack);
  /// exceeded = NonTermination.
  long stepBudgetFactor = 10;
  std::uint64_t seed = 42;
  /// Worker threads for the scenario fan-out (1 = run inline on the
  /// calling thread, the pre-pool behaviour). Scenarios are independent
  /// simulated worlds (thread-local runtimes), and all per-scenario
  /// randomness derives from `seed` and the scenario's own schedule — so
  /// the result (outcomes, classifications, minimal reproducers, simulated
  /// times) is identical at any job count; only wall-clock fields differ.
  std::size_t jobs = 1;
  /// App construction hook; defaults to makeChaosApp. Tests substitute
  /// deliberately-broken wrappers to validate the sweeper's detection and
  /// shrinking (mutation testing).
  ChaosAppFactory appFactory;
};

struct SweepResult {
  SweepOptions options;
  long scenariosRun = 0;
  std::vector<ScenarioOutcome> outcomes;  ///< one per scenario, in order
  /// Failed outcomes (subset of `outcomes`, copied for convenience).
  std::vector<ScenarioOutcome> failures;
  /// Max simulated restore ms over the scenarios of each mode (keyed by
  /// toString(RestoreMode)).
  std::map<std::string, double> worstRestoreMs;

  // Wall-clock sweep statistics. These are the only fields that depend on
  // the job count or the hardware; writeJsonReport deliberately omits
  // them so the JSON report is byte-identical at any --jobs value (the
  // chaos_sweep tool emits them into BENCH_sweep.json instead).
  std::size_t jobsUsed = 1;
  double wallSeconds = 0.0;
  double scenariosPerSec = 0.0;

  [[nodiscard]] bool allOk() const noexcept { return failures.empty(); }
};

class ChaosSweeper {
 public:
  explicit ChaosSweeper(SweepOptions options);

  /// Enumerate and run the whole sweep. Golden runs are computed up front
  /// on the calling thread; scenarios (and the shrinking of any failures)
  /// then fan out across `options.jobs` worker threads, each running its
  /// schedule in a private thread-local world. Results are collected by
  /// scenario index, so outcome order — and the JSON report — is
  /// independent of the job count. The calling thread's ambient world (if
  /// any) is preserved across the call.
  [[nodiscard]] SweepResult run();

  /// Run one schedule against `app` in a fresh world and classify it
  /// (used by run(), the shrinker, and tests that probe single scenarios).
  [[nodiscard]] ScenarioOutcome runScenario(AppKind app,
                                            const FaultSchedule& schedule);

  /// Greedily shrink a failing schedule to a minimal reproducer: try each
  /// shrinkCandidates() neighbour, adopt any that still fails, repeat
  /// until none does.
  [[nodiscard]] FaultSchedule shrink(AppKind app,
                                     const FaultSchedule& failing);

  /// The fault-space axes for `app` (golden run must be available — this
  /// computes it on demand; dispatch points are derived from golden
  /// boundary dispatch counts).
  [[nodiscard]] ScheduleSpace scheduleSpace(AppKind app);

 private:
  /// The cached golden run for `app`, computing it (in the calling
  /// thread's world) on first use. Guarded by goldenMutex_ so concurrent
  /// runScenario calls are safe; run() warms the cache serially before
  /// fanning out, making worker accesses pure reads.
  const GoldenRun& golden(AppKind app);
  void initWorld(apgas::Backend backend);
  [[nodiscard]] std::vector<apgas::PlaceId> spareIds() const;

  SweepOptions options_;
  std::mutex goldenMutex_;
  std::map<AppKind, GoldenRun> golden_;
};

}  // namespace rgml::harness
