#include "obs/json_util.h"

#include <cstdio>

namespace rgml::obs {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += esc;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void writeJsonString(std::ostream& os, std::string_view s) {
  os << '"' << jsonEscape(s) << '"';
}

}  // namespace rgml::obs
