file(REMOVE_RECURSE
  "CMakeFiles/random_failure_test.dir/random_failure_test.cpp.o"
  "CMakeFiles/random_failure_test.dir/random_failure_test.cpp.o.d"
  "random_failure_test"
  "random_failure_test.pdb"
  "random_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
