// DistVector: a vector partitioned into one contiguous segment per place
// (x10.matrix.distblock.DistVector).
//
// Segments follow a balanced 1D partition of [0, n). remake() always
// recalculates the segmentation for the new place group (paper §IV-A2:
// classes that assign one block per place must recalculate the data grid),
// so restoreSnapshot() maps new segment ranges onto the saved ones,
// copying overlapping sub-ranges when the partition changed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "apgas/place_group.h"
#include "apgas/place_local_handle.h"
#include "la/vector.h"
#include "resilient/snapshot.h"

namespace rgml::gml {

class DistBlockMatrix;
class DupVector;

class DistVector final : public resilient::Snapshottable {
 public:
  DistVector() = default;

  /// A zero vector of length n, balanced over `pg`.
  static DistVector make(long n, const apgas::PlaceGroup& pg);

  [[nodiscard]] long size() const noexcept { return n_; }
  [[nodiscard]] const apgas::PlaceGroup& placeGroup() const noexcept {
    return pg_;
  }

  /// Global start index / length of segment `idx`.
  [[nodiscard]] long segOffset(long idx) const;
  [[nodiscard]] long segSize(long idx) const;

  /// The segment stored at the current place.
  [[nodiscard]] la::Vector& localSegment() const;

  /// Set all elements to `v`.
  void init(double v);
  /// Deterministic uniform fill; element values depend only on (seed, n),
  /// not on the distribution.
  void initRandom(std::uint64_t seed, double lo = 0.0, double hi = 1.0);
  /// Initialise element i to fn(i).
  void init(const std::function<double(long)>& fn);

  /// this = A * x. Works for any block-to-place mapping of A: each place
  /// multiplies its blocks and scatter-adds the partial row ranges into
  /// the owning segments. When every block's rows fall inside its owner's
  /// segment (the common aligned layout) a fused single-finish path runs
  /// with no data movement at all.
  void mult(const DistBlockMatrix& A, const DupVector& x);

  /// True if `mult(A, .)` would take the fused local path.
  [[nodiscard]] bool multIsAligned(const DistBlockMatrix& A) const;

  /// sum_i this_i * x_i with x duplicated: local dots + scalar reduction.
  [[nodiscard]] double dot(const DupVector& x) const;
  /// sum_i this_i * o_i; both distributed (segmentations must match).
  [[nodiscard]] double dot(const DistVector& o) const;

  void scale(double a);
  void cellAdd(const DistVector& o);
  /// this += a * x (matching distribution).
  void axpy(double a, const DistVector& x);
  /// Elementwise multiply / divide by a matching distribution.
  void cellMult(const DistVector& o);
  void cellDiv(const DistVector& o);
  /// Segment-wise copy from a matching distribution.
  void copyFrom(const DistVector& o);
  /// Take this vector's elements from a duplicated vector's replica.
  void copyFromDup(const DupVector& src);
  /// Global extrema (local scans + scalar reduction).
  [[nodiscard]] double max() const;
  [[nodiscard]] double min() const;
  /// Elementwise map in place: seg[i] = fn(seg[i], globalIndex).
  void map(const std::function<double(double, long)>& fn,
           double flopsPerElement = 1.0);
  /// Elementwise map with a second distributed operand:
  /// seg[i] = fn(seg[i], o.seg[i], globalIndex).
  void map2(const DistVector& o,
            const std::function<double(double, double, long)>& fn,
            double flopsPerElement = 1.0);

  [[nodiscard]] double norm2() const;
  [[nodiscard]] double sum() const;

  /// Gather all segments into `dst` at the calling place (flat gather,
  /// serialised on this place's clock). |dst| must equal size().
  void copyTo(la::Vector& dst) const;
  /// Scatter `src` from the calling place into the segments.
  void copyFrom(const la::Vector& src);

  /// Element read for tests/verification (charges one small message when
  /// the element is remote).
  [[nodiscard]] double at(long i) const;

  /// Repartition over `newPg` (balanced segmentation; contents zeroed).
  void remake(const apgas::PlaceGroup& newPg);

  // -- Snapshottable ------------------------------------------------------
  /// Keys are place indices; values carry the segment plus its global
  /// offset so a repartitioned restore can re-map ranges.
  [[nodiscard]] std::shared_ptr<resilient::Snapshot> makeSnapshot()
      const override;
  void restoreSnapshot(const resilient::Snapshot& snapshot) override;

 private:
  DistVector(long n, apgas::PlaceGroup pg);
  void alloc();

  long n_ = 0;
  apgas::PlaceGroup pg_;
  std::vector<long> segSizes_;
  std::vector<long> segOffsets_;
  apgas::PlaceLocalHandle<la::Vector> plh_;
  /// Serialises unaligned mult() scatter-adds into this vector's segments.
  /// Shared-ptr so copies (which share plh_) share it, and so independent
  /// vectors in concurrent sweep worlds never contend on each other.
  std::shared_ptr<std::mutex> scatterMu_ = std::make_shared<std::mutex>();

  friend class DupVector;        // transMult reads segments
  friend class DistBlockMatrix;  // mult scatter-adds into segments
};

}  // namespace rgml::gml
