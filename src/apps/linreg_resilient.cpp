#include "apps/linreg_resilient.h"

namespace rgml::apps {

using apgas::PlaceGroup;
using framework::RestoreMode;

LinRegResilient::LinRegResilient(const LinRegConfig& config,
                                 const PlaceGroup& pg)
    : config_(config), pg_(pg) {}

void LinRegResilient::init() {
  const long places = static_cast<long>(pg_.size());
  const long m = config_.rowsPerPlace * places;
  const long n = config_.features;
  x_ = gml::DistBlockMatrix::makeDense(
      m, n, config_.blocksPerPlace * places, 1, places, 1, pg_);
  x_.initRandom(config_.seed);
  y_ = gml::DistVector::make(m, pg_);
  y_.initRandom(config_.seed + 1);
  w_ = gml::DupVector::make(n, pg_);
  p_ = gml::DupVector::make(n, pg_);
  r_ = gml::DupVector::make(n, pg_);
  q_ = gml::DupVector::make(n, pg_);
  xp_ = gml::DistVector::make(m, pg_);
  scalars_ = resilient::SnapshottableScalars(2, pg_);

  w_.init(0.0);
  r_.transMult(x_, y_);
  p_.copyFrom(r_);
  normR2_ = r_.dot(r_);
  iteration_ = 0;
}

bool LinRegResilient::isFinished() {
  return iteration_ >= config_.iterations;
}

void LinRegResilient::step() {
  xp_.mult(x_, p_);
  q_.transMult(x_, xp_);
  q_.axpy(config_.lambda, p_);

  // The system is SPD, so p'q == 0 only for a null search direction:
  // CG has converged to machine precision, or a lossy restore quantized
  // the (already tiny) residual state to exactly zero. Either way there
  // is no descent direction — updating would divide by zero and poison
  // the weights with NaN, so hold the iterate instead.
  const double pq = p_.dot(q_);
  if (pq > 0.0) {
    const double alpha = normR2_ / pq;
    w_.axpy(alpha, p_);
    r_.axpy(-alpha, q_);
  }

  const double newNormR2 = r_.dot(r_);
  const double beta = normR2_ > 0.0 ? newNormR2 / normR2_ : 0.0;
  normR2_ = newNormR2;

  p_.scale(beta);
  p_.cellAdd(r_);

  ++iteration_;
}

void LinRegResilient::checkpoint(resilient::AppResilientStore& store) {
  scalars_[0] = normR2_;
  scalars_[1] = static_cast<double>(iteration_);
  store.startNewSnapshot();
  store.saveReadOnly(x_);
  store.saveReadOnly(y_);
  store.save(w_);
  store.save(p_);
  store.save(r_);
  store.save(scalars_);
  store.commit();
}

void LinRegResilient::restore(const PlaceGroup& newPlaces,
                              resilient::AppResilientStore& store,
                              long snapshotIter, RestoreMode mode) {
  switch (mode) {
    case RestoreMode::Shrink:
    case RestoreMode::AlgorithmBased:  // unreachable: executor falls back
      x_.remakeShrink(newPlaces);
      break;
    case RestoreMode::ShrinkRebalance:
      x_.remakeRebalance(newPlaces);
      break;
    case RestoreMode::ReplaceRedundant:
    case RestoreMode::ReplaceElastic:
      x_.remakeSameDist(newPlaces);
      break;
  }
  y_.remake(newPlaces);
  w_.remake(newPlaces);
  p_.remake(newPlaces);
  r_.remake(newPlaces);
  q_.remake(newPlaces);
  xp_.remake(newPlaces);
  scalars_.remake(newPlaces);
  pg_ = newPlaces;

  store.restore();

  normR2_ = scalars_[0];
  iteration_ = static_cast<long>(scalars_[1]);
  if (iteration_ != snapshotIter) {
    throw apgas::ApgasError(
        "LinRegResilient::restore: snapshot iteration mismatch");
  }
}

}  // namespace rgml::apps
