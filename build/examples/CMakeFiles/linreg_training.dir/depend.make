# Empty dependencies file for linreg_training.
# This may be replaced when dependencies are built.
