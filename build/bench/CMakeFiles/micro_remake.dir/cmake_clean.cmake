file(REMOVE_RECURSE
  "CMakeFiles/micro_remake.dir/micro_remake.cpp.o"
  "CMakeFiles/micro_remake.dir/micro_remake.cpp.o.d"
  "micro_remake"
  "micro_remake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_remake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
