file(REMOVE_RECURSE
  "CMakeFiles/apgas_test.dir/apgas_test.cpp.o"
  "CMakeFiles/apgas_test.dir/apgas_test.cpp.o.d"
  "apgas_test"
  "apgas_test.pdb"
  "apgas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apgas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
