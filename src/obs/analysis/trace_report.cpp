#include "obs/analysis/trace_report.h"

#include <iomanip>
#include <sstream>

#include "obs/json_util.h"

namespace rgml::obs::analysis {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

/// Fixed-point rendering for the human tables (ms resolution is noise
/// here; 6 decimals of simulated seconds is plenty).
std::string fixed6(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6) << v;
  return os.str();
}

std::string pct2(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v << '%';
  return os.str();
}

void writeBucketTable(std::ostream& os, const char* heading,
                      const std::vector<AttributionBucket>& buckets) {
  os << "  " << std::left << std::setw(20) << heading << std::right
     << std::setw(14) << "seconds" << std::setw(10) << "pct"
     << std::setw(8) << "spans" << std::setw(14) << "bytes" << "\n";
  for (const AttributionBucket& b : buckets) {
    os << "  " << std::left << std::setw(20) << b.key << std::right
       << std::setw(14) << fixed6(b.selfSeconds) << std::setw(10)
       << pct2(b.pct) << std::setw(8) << b.spans << std::setw(14)
       << b.bytes << "\n";
  }
}

void writeBucketsJson(std::ostream& os, const char* key,
                      const std::vector<AttributionBucket>& buckets,
                      const char* indent) {
  os << indent << "\"" << key << "\": [";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const AttributionBucket& b = buckets[i];
    os << (i ? "," : "") << "\n" << indent << "  {\"key\": \""
       << jsonEscape(b.key) << "\", \"self_seconds\": "
       << num(b.selfSeconds) << ", \"pct\": " << num(b.pct)
       << ", \"spans\": " << b.spans << ", \"bytes\": " << b.bytes << "}";
  }
  os << (buckets.empty() ? "" : "\n") << (buckets.empty() ? "" : indent)
     << "]";
}

void writeAttributionJson(std::ostream& os, const AttributionReport& a,
                          const char* indent) {
  std::string inner = std::string(indent) + "  ";
  os << "{\n"
     << inner << "\"total_seconds\": " << num(a.totalSeconds) << ",\n";
  writeBucketsJson(os, "by_category", a.byCategory, inner.c_str());
  os << ",\n";
  writeBucketsJson(os, "by_phase", a.byPhase, inner.c_str());
  os << "\n" << indent << "}";
}

void writeEntryJson(std::ostream& os, const CriticalPathEntry& e) {
  os << "{\"category\": \"" << jsonEscape(e.category) << "\", \"name\": \""
     << jsonEscape(e.name) << "\", \"phase\": \"" << jsonEscape(e.phase)
     << "\", \"place\": " << e.place << ", \"iteration\": " << e.iteration
     << ", \"start\": " << num(e.startTime)
     << ", \"duration\": " << num(e.duration()) << "}";
}

void writeCriticalPathJson(std::ostream& os, const CriticalPath& p,
                           const char* indent) {
  std::string inner = std::string(indent) + "  ";
  os << "{\n"
     << inner << "\"length_seconds\": " << num(p.lengthSeconds) << ",\n"
     << inner << "\"makespan_seconds\": " << num(p.makespanSeconds)
     << ",\n"
     << inner << "\"entries\": [";
  for (std::size_t i = 0; i < p.entries.size(); ++i) {
    os << (i ? "," : "") << "\n" << inner << "  ";
    writeEntryJson(os, p.entries[i]);
  }
  os << (p.entries.empty() ? "" : "\n")
     << (p.entries.empty() ? "" : inner.c_str()) << "],\n"
     << inner << "\"by_category\": [";
  for (std::size_t i = 0; i < p.byCategory.size(); ++i) {
    const CriticalPathCategory& c = p.byCategory[i];
    os << (i ? "," : "") << "\n" << inner << "  {\"key\": \""
       << jsonEscape(c.key) << "\", \"seconds\": " << num(c.seconds)
       << ", \"pct\": " << num(c.pct) << ", \"spans\": " << c.spans
       << ", \"top\": [";
    for (std::size_t j = 0; j < c.top.size(); ++j) {
      os << (j ? ", " : "");
      writeEntryJson(os, c.top[j]);
    }
    os << "]}";
  }
  os << (p.byCategory.empty() ? "" : "\n")
     << (p.byCategory.empty() ? "" : inner.c_str()) << "]\n"
     << indent << "}";
}

void writeAmortizationJson(std::ostream& os, const AmortizationReport& a,
                           const char* indent) {
  std::string inner = std::string(indent) + "  ";
  os << "{\n"
     << inner << "\"steps\": " << a.steps << ",\n"
     << inner << "\"step_seconds\": " << num(a.stepSeconds) << ",\n"
     << inner << "\"avg_step_seconds\": " << num(a.avgStepSeconds)
     << ",\n"
     << inner << "\"checkpoints\": " << a.checkpoints << ",\n"
     << inner << "\"checkpoint_seconds\": " << num(a.checkpointSeconds)
     << ",\n"
     << inner << "\"avg_checkpoint_seconds\": "
     << num(a.avgCheckpointSeconds) << ",\n"
     << inner << "\"restores\": " << a.restores << ",\n"
     << inner << "\"restore_seconds\": " << num(a.restoreSeconds) << ",\n"
     << inner << "\"fresh_bytes\": " << a.freshBytes << ",\n"
     << inner << "\"carried_bytes\": " << a.carriedBytes << ",\n"
     << inner << "\"fresh_entries\": " << a.freshEntries << ",\n"
     << inner << "\"carried_entries\": " << a.carriedEntries << ",\n"
     << inner << "\"carried_fraction\": " << num(a.carriedFraction)
     << ",\n"
     << inner << "\"raw_bytes\": " << a.rawBytes << ",\n"
     << inner << "\"encoded_bytes\": " << a.encodedBytes << ",\n"
     << inner << "\"codec_seconds\": " << num(a.codecSeconds) << ",\n"
     << inner << "\"compression_ratio\": " << num(a.compressionRatio)
     << ",\n"
     << inner << "\"checkpoint_overhead_pct\": "
     << num(a.checkpointOverheadPct) << ",\n"
     << inner << "\"restore_overhead_pct\": " << num(a.restoreOverheadPct)
     << ",\n"
     << inner << "\"mtbf_seconds\": " << num(a.mtbfSeconds) << ",\n"
     << inner << "\"mtbf_observed\": "
     << (a.mtbfObserved ? "true" : "false") << ",\n"
     << inner << "\"checkpoint_cost_used\": " << num(a.checkpointCostUsed)
     << ",\n"
     << inner << "\"recommended_interval\": " << a.recommendedInterval
     << ",\n"
     << inner << "\"recommended_overhead_pct\": "
     << num(a.recommendedOverheadPct) << ",\n"
     << inner << "\"note\": \"" << jsonEscape(a.note) << "\"\n"
     << indent << "}";
}

}  // namespace

LaneAnalysis analyzeLane(const LoadedLane& lane, std::size_t topK) {
  LaneAnalysis a;
  a.pid = lane.pid;
  a.name = lane.name;
  a.spanCount = static_cast<long>(lane.spans.size());
  a.attribution = attributeSelfTime(lane.spans);
  a.criticalPath = extractCriticalPath(lane.spans, topK);
  return a;
}

TraceReport buildReport(std::vector<LaneAnalysis> lanes,
                        const MetricsRegistry* metrics,
                        double expectedMtbfSeconds) {
  TraceReport report;
  report.lanes = std::move(lanes);
  double observedSeconds = 0.0;
  for (const LaneAnalysis& lane : report.lanes) {
    mergeAttribution(report.overall, lane.attribution);
    // Each lane runs on its own simulated clock, so run spans add up.
    observedSeconds += lane.criticalPath.makespanSeconds;
  }
  if (metrics != nullptr) {
    report.hasMetrics = true;
    report.amortization =
        computeAmortization(*metrics, observedSeconds, expectedMtbfSeconds);
  }
  return report;
}

void writeHumanReport(const TraceReport& report, std::ostream& os) {
  os << "== Overall attribution (self time, "
     << fixed6(report.overall.totalSeconds) << " s across "
     << report.lanes.size() << " lane(s)) ==\n";
  writeBucketTable(os, "category", report.overall.byCategory);
  os << "\n";
  writeBucketTable(os, "phase", report.overall.byPhase);

  for (const LaneAnalysis& lane : report.lanes) {
    const CriticalPath& p = lane.criticalPath;
    os << "\n== Lane " << lane.pid;
    if (!lane.name.empty()) os << " (" << lane.name << ")";
    os << ": " << lane.spanCount << " span(s) ==\n";
    const double idlePct =
        p.makespanSeconds > 0.0
            ? (1.0 - p.lengthSeconds / p.makespanSeconds) * 100.0
            : 0.0;
    os << "  critical path " << fixed6(p.lengthSeconds) << " s of "
       << fixed6(p.makespanSeconds) << " s makespan (" << pct2(idlePct)
       << " slack), " << p.entries.size() << " span(s)\n";
    for (const CriticalPathCategory& c : p.byCategory) {
      os << "    " << std::left << std::setw(18) << c.key << std::right
         << std::setw(14) << fixed6(c.seconds) << std::setw(10)
         << pct2(c.pct) << std::setw(8) << c.spans << "  top:";
      for (const CriticalPathEntry& e : c.top) {
        os << ' ' << e.name;
        if (e.iteration >= 0) os << " iter=" << e.iteration;
        os << " p" << e.place << ' ' << fixed6(e.duration()) << "s;";
      }
      os << "\n";
    }
  }

  if (report.hasMetrics) {
    const AmortizationReport& a = report.amortization;
    os << "\n== Checkpoint amortization ==\n"
       << "  steps " << a.steps << " (avg " << fixed6(a.avgStepSeconds)
       << " s), checkpoints " << a.checkpoints << " (avg "
       << fixed6(a.avgCheckpointSeconds) << " s), restores " << a.restores
       << " (" << fixed6(a.restoreSeconds) << " s)\n"
       << "  checkpoint volume: fresh " << a.freshBytes << " B / carried "
       << a.carriedBytes << " B (" << pct2(a.carriedFraction * 100.0)
       << " carried), entries " << a.freshEntries << " fresh / "
       << a.carriedEntries << " carried\n"
       << "  observed overhead: checkpoint "
       << pct2(a.checkpointOverheadPct) << ", restore "
       << pct2(a.restoreOverheadPct) << "\n";
    if (a.encodedBytes > 0) {
      os << "  codec volume: raw " << a.rawBytes << " B -> encoded "
         << a.encodedBytes << " B (" << fixed6(a.compressionRatio)
         << "x), codec time " << fixed6(a.codecSeconds) << " s\n";
    }
    if (!a.note.empty()) {
      os << "  " << a.note << "\n";
    }
    if (a.recommendedInterval > 0) {
      os << "  mtbf " << fixed6(a.mtbfSeconds) << " s ("
         << (a.mtbfObserved ? "observed" : "given")
         << ") -> recommended interval " << a.recommendedInterval
         << " iteration(s) (amortizing " << fixed6(a.checkpointCostUsed)
         << " s/checkpoint), expected overhead "
         << pct2(a.recommendedOverheadPct) << "\n";
    }
  }
}

void writeJsonReport(const TraceReport& report, std::ostream& os) {
  os << "{\n  \"trace_report\": {\n    \"lanes\": [";
  for (std::size_t i = 0; i < report.lanes.size(); ++i) {
    const LaneAnalysis& lane = report.lanes[i];
    os << (i ? "," : "") << "\n      {\"pid\": " << lane.pid
       << ", \"name\": \"" << jsonEscape(lane.name)
       << "\", \"spans\": " << lane.spanCount << ",\n"
       << "       \"attribution\": ";
    writeAttributionJson(os, lane.attribution, "       ");
    os << ",\n       \"critical_path\": ";
    writeCriticalPathJson(os, lane.criticalPath, "       ");
    os << "}";
  }
  os << (report.lanes.empty() ? "" : "\n    ") << "],\n"
     << "    \"overall\": ";
  writeAttributionJson(os, report.overall, "    ");
  if (report.hasMetrics) {
    os << ",\n    \"amortization\": ";
    writeAmortizationJson(os, report.amortization, "    ");
  }
  os << "\n  }\n}\n";
}

}  // namespace rgml::obs::analysis
