# Empty dependencies file for restore_property_test.
# This may be replaced when dependencies are built.
