// Grid: partitioning of an m x n matrix into rowBlocks x colBlocks blocks
// (x10.matrix.block.Grid).
//
// Blocks are balanced: dimension d split into b blocks gives the first
// (d mod b) blocks one extra row/column. Grid equality decides which
// restore path a DistBlockMatrix takes: same grid -> block-by-block,
// different grid -> overlapping-region (repartitioned) restore.
#pragma once

#include <vector>

namespace rgml::la {

class Grid {
 public:
  Grid() = default;
  Grid(long m, long n, long rowBlocks, long colBlocks);

  [[nodiscard]] long rows() const noexcept { return m_; }
  [[nodiscard]] long cols() const noexcept { return n_; }
  [[nodiscard]] long rowBlocks() const noexcept { return rowBs_; }
  [[nodiscard]] long colBlocks() const noexcept { return colBs_; }
  [[nodiscard]] long numBlocks() const noexcept { return rowBs_ * colBs_; }

  /// Height of block-row rb / width of block-column cb.
  [[nodiscard]] long rowBlockSize(long rb) const;
  [[nodiscard]] long colBlockSize(long cb) const;

  /// First matrix row of block-row rb / first column of block-column cb.
  [[nodiscard]] long rowBlockStart(long rb) const;
  [[nodiscard]] long colBlockStart(long cb) const;

  /// Block-row containing matrix row i / block-column containing column j.
  [[nodiscard]] long rowBlockOf(long i) const;
  [[nodiscard]] long colBlockOf(long j) const;

  /// Linearised block id (row-major over the block grid) and its inverse.
  [[nodiscard]] long blockId(long rb, long cb) const noexcept {
    return rb * colBs_ + cb;
  }
  [[nodiscard]] long blockRow(long id) const noexcept { return id / colBs_; }
  [[nodiscard]] long blockCol(long id) const noexcept { return id % colBs_; }

  friend bool operator==(const Grid& a, const Grid& b) noexcept {
    return a.m_ == b.m_ && a.n_ == b.n_ && a.rowBs_ == b.rowBs_ &&
           a.colBs_ == b.colBs_;
  }
  friend bool operator!=(const Grid& a, const Grid& b) noexcept {
    return !(a == b);
  }

  /// Balanced 1D partition of `n` elements into `parts` segments: the
  /// per-segment sizes (used by DistVector and Grid alike).
  static std::vector<long> segmentSizes(long n, long parts);
  /// Start offset of segment `s` in the same partition.
  static long segmentStart(long n, long parts, long s);
  /// Segment containing element `i`.
  static long segmentOf(long n, long parts, long i);

 private:
  long m_ = 0;
  long n_ = 0;
  long rowBs_ = 0;
  long colBs_ = 0;
};

}  // namespace rgml::la
