// Flight-recorder unit tests: seqlock ring wraparound and concurrent
// reader/writer validation (the TSan target), deterministic forensic-dump
// byte-identity regardless of thread interleaving, end-to-end event
// capture on the real Threads backend (including the kill path), and the
// analyzer percentiles tools/flight_report is built on.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "apgas/runtime.h"
#include "obs/analysis/flight_report.h"
#include "obs/analysis/json.h"
#include "obs/flight/flight_recorder.h"
#include "obs/flight/forensic_dump.h"
#include "obs/flight/stall_watchdog.h"

namespace {

using namespace rgml;
using namespace rgml::obs::flight;

Event makeEvent(double t, EventKind kind, int queue, long depth,
                double value) {
  Event e;
  e.t = t;
  e.kind = kind;
  e.queue = queue;
  e.depth = depth;
  e.value = value;
  return e;
}

TEST(FlightRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRing(1).capacity(), 1u);
  EXPECT_EQ(FlightRing(5).capacity(), 8u);
  EXPECT_EQ(FlightRing(8).capacity(), 8u);
  EXPECT_EQ(FlightRing(0).capacity(), 1u);
}

TEST(FlightRingTest, WraparoundKeepsMostRecentSuffix) {
  FlightRing ring(8);
  for (int i = 0; i < 100; ++i) {
    ring.record(makeEvent(i, EventKind::Enqueue, i % 4, i, 0.0));
  }
  EXPECT_EQ(ring.recorded(), 100u);
  const std::vector<Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].t, 92.0 + i);
    EXPECT_EQ(events[static_cast<std::size_t>(i)].depth, 92 + i);
  }
}

TEST(FlightRingTest, SnapshotBelowCapacityReturnsEverything) {
  FlightRing ring(16);
  for (int i = 0; i < 5; ++i) {
    ring.record(makeEvent(i, EventKind::Dequeue, 1, i, i * 0.5));
  }
  const std::vector<Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const Event& e = events[static_cast<std::size_t>(i)];
    EXPECT_DOUBLE_EQ(e.t, i);
    EXPECT_EQ(e.kind, EventKind::Dequeue);
    EXPECT_DOUBLE_EQ(e.value, i * 0.5);
  }
}

// The TSan target: one producer hammers the ring while a reader takes
// validated snapshots. Cross-field invariants (value = 2t, depth = t)
// prove the seqlock never yields a torn event — every accepted slot is
// internally consistent, and accepted timestamps ascend.
TEST(FlightRingTest, ConcurrentWriterAndSnapshotsStayConsistent) {
  FlightRing ring(64);
  constexpr int kEvents = 50000;
  std::thread writer([&ring] {
    for (int i = 0; i < kEvents; ++i) {
      ring.record(makeEvent(i, EventKind::Enqueue, i % 7, i, 2.0 * i));
    }
  });
  for (int round = 0; round < 200; ++round) {
    const std::vector<Event> events = ring.snapshot();
    double prev = -1.0;
    for (const Event& e : events) {
      EXPECT_GT(e.t, prev);
      prev = e.t;
      EXPECT_DOUBLE_EQ(e.value, 2.0 * e.t);
      EXPECT_EQ(static_cast<double>(e.depth), e.t);
      EXPECT_EQ(e.queue, static_cast<int>(e.depth) % 7);
    }
  }
  writer.join();
  const std::vector<Event> finalEvents = ring.snapshot();
  ASSERT_EQ(finalEvents.size(), 64u);
  EXPECT_DOUBLE_EQ(finalEvents.back().t, kEvents - 1.0);
}

TEST(FlightRecorderTest, EventKindNamesRoundTrip) {
  for (int k = static_cast<int>(EventKind::Enqueue);
       k <= static_cast<int>(EventKind::Poison); ++k) {
    const auto kind = static_cast<EventKind>(k);
    EventKind parsed = EventKind::Enqueue;
    ASSERT_TRUE(parseEventKind(toString(kind), parsed)) << toString(kind);
    EXPECT_EQ(parsed, kind);
  }
  EventKind parsed = EventKind::Enqueue;
  EXPECT_FALSE(parseEventKind("warp_core_breach", parsed));
}

TEST(FlightRecorderTest, ProgressCountersPerQueue) {
  FlightRecorder rec(2, 16);
  rec.noteEnqueue(0, 1);
  rec.noteEnqueue(0, 2);
  rec.noteDequeue(0, 1);
  rec.noteEnqueue(kCtrlQueue, 5);
  rec.noteEnqueue(7, 1);  // out of range: ignored, not a crash
  const auto p0 = rec.progress(0);
  EXPECT_EQ(p0.enqueues, 2u);
  EXPECT_EQ(p0.dequeues, 1u);
  EXPECT_EQ(p0.depth, 1);
  EXPECT_FALSE(p0.dead);
  EXPECT_EQ(rec.progress(kCtrlQueue).enqueues, 1u);
  EXPECT_EQ(rec.progress(1).enqueues, 0u);
  rec.markDead(1);
  EXPECT_TRUE(rec.progress(1).dead);
}

TEST(FlightRecorderTest, AddPlacesGrowsProgressTable) {
  FlightRecorder rec(2, 16);
  EXPECT_EQ(rec.places(), 2);
  rec.addPlaces(3);
  EXPECT_EQ(rec.places(), 5);
  rec.noteEnqueue(4, 1);
  EXPECT_EQ(rec.progress(4).enqueues, 1u);
  // Rows that existed before the growth keep their identity.
  rec.noteEnqueue(0, 1);
  EXPECT_EQ(rec.progress(0).enqueues, 1u);
}

/// Deterministic recorder population: `threads` lanes named p0..pN with
/// synthetic timestamps, plus two manual watchdog samples under a fake
/// clock. When `race` is set the lanes bind from concurrently racing
/// threads — the dump must not depend on registration order.
std::string buildDeterministicDump(int lanes, bool race) {
  FlightRecorder rec(lanes, 8);
  auto populate = [&rec](int lane) {
    rec.bindCurrentThread("p" + std::to_string(lane), lane);
    for (int i = 0; i < 3; ++i) {
      rec.record(makeEvent(lane * 10.0 + i, EventKind::Enqueue, lane,
                           i + 1, 0.0));
    }
    rec.noteEnqueue(lane, 3);
  };
  if (race) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(lanes));
    for (int lane = 0; lane < lanes; ++lane) {
      threads.emplace_back(populate, lane);
    }
    for (std::thread& t : threads) t.join();
  } else {
    for (int lane = 0; lane < lanes; ++lane) {
      std::thread(populate, lane).join();
    }
  }
  double fakeNow = 1.0;
  StallWatchdog wd(rec, [&fakeNow] { return fakeNow; }, 0.0);
  wd.sampleNow();
  fakeNow = 2.0;
  wd.sampleNow();
  return forensicJson(rec, &wd);
}

// The harness attaches these dumps to chaos reports; classification
// byte-identity across --jobs counts needs the dump itself to be a pure
// function of the recorded facts, not of thread registration races or
// sweep parallelism.
TEST(FlightRecorderTest, ForensicDumpIsByteIdenticalAcrossInterleavings) {
  const std::string serial = buildDeterministicDump(8, /*race=*/false);
  const std::string raced = buildDeterministicDump(8, /*race=*/true);
  EXPECT_EQ(serial, raced);
  // And stable across repeated builds (the --jobs 1 vs 8 contract in
  // miniature: same facts, independent executions, same bytes).
  EXPECT_EQ(serial, buildDeterministicDump(8, /*race=*/true));
}

TEST(FlightRecorderTest, ForensicDumpParsesAndAnalyzes) {
  const std::string dump = buildDeterministicDump(4, /*race=*/false);
  const auto root = obs::analysis::JsonValue::parse(dump);
  const obs::analysis::FlightAnalysis analysis =
      obs::analysis::analyzeFlight(root);
  EXPECT_EQ(analysis.places, 4);
  EXPECT_EQ(analysis.lanes, 4);
  EXPECT_EQ(analysis.eventsRecorded, 12u);
  EXPECT_EQ(analysis.eventsRetained, 12u);
  // Every lane left 3 messages undequeued across both samples, so the
  // watchdog flagged each of the 4 place queues once.
  EXPECT_EQ(analysis.verdicts.size(), 4u);
}

TEST(FlightAnalysisTest, PercentileConvention) {
  using obs::analysis::flightPercentile;
  EXPECT_DOUBLE_EQ(flightPercentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(flightPercentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(flightPercentile({7.0}, 0.99), 7.0);
  const std::vector<double> s{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(flightPercentile(s, 0.5), 3.0);   // floor(0.5*4) = 2
  EXPECT_DOUBLE_EQ(flightPercentile(s, 0.99), 4.0);  // clamped to last
  EXPECT_DOUBLE_EQ(flightPercentile(s, 0.0), 1.0);
}

TEST(FlightAnalysisTest, AckWaitGroupedByHomePlace) {
  FlightRecorder rec(2, 32);
  rec.bindCurrentThread("p0", 0);
  // Three finishes closed at place 0 (1ms, 2ms, 3ms), one at place 1.
  for (int i = 1; i <= 3; ++i) {
    rec.record(makeEvent(i, EventKind::AckWaitEnd, 0, 2, i * 1e-3));
  }
  rec.record(makeEvent(4.0, EventKind::AckWaitEnd, 1, 2, 5e-3));
  const auto root = obs::analysis::JsonValue::parse(
      forensicJson(rec, nullptr));
  const auto analysis = obs::analysis::analyzeFlight(root);
  ASSERT_EQ(analysis.ackWait.size(), 2u);
  EXPECT_EQ(analysis.ackWait[0].queue, 0);
  EXPECT_EQ(analysis.ackWait[0].count, 3);
  EXPECT_DOUBLE_EQ(analysis.ackWait[0].p50Us, 2000.0);
  EXPECT_DOUBLE_EQ(analysis.ackWait[0].maxUs, 3000.0);
  EXPECT_EQ(analysis.ackWait[1].queue, 1);
  EXPECT_DOUBLE_EQ(analysis.ackWait[1].p50Us, 5000.0);
  const auto point = obs::analysis::finishCurvePoint(analysis);
  EXPECT_EQ(point.places, 2);
  EXPECT_EQ(point.place0Count, 3);
  EXPECT_DOUBLE_EQ(point.othersMaxP50Us, 5000.0);
}

// End to end on the real backend: a resilient world records enqueue /
// dequeue / ack-wait events for every place, and the kill path records
// kill + heap-wipe + poison into the killer's lane.
TEST(FlightRecorderTest, ThreadsBackendRecordsLifecycleEvents) {
  apgas::RuntimeConfig cfg;
  cfg.numPlaces = 3;
  cfg.backend = apgas::Backend::Threads;
  cfg.resilientFinish = true;
  cfg.flightRingCapacity = 4096;
  apgas::WorldGuard guard(cfg);
  apgas::Runtime& rt = apgas::Runtime::world();
  ASSERT_NE(rt.flightRecorder(), nullptr);
  apgas::finish([] {
    for (int p = 1; p < 3; ++p) {
      apgas::asyncAt(apgas::Place(p), [] {
        apgas::finish([] { apgas::async([] {}); });
      });
    }
  });
  rt.kill(2);
  const std::string dump = rt.flightDump();
  ASSERT_FALSE(dump.empty());
  const auto root = obs::analysis::JsonValue::parse(dump);
  const auto analysis = obs::analysis::analyzeFlight(root);
  EXPECT_EQ(analysis.places, 3);
  EXPECT_GE(analysis.lanes, 3L);  // p0..p2 workers at least
  // Every place closed at least one resilient finish.
  ASSERT_GE(analysis.ackWait.size(), 3u);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(analysis.ackWait[static_cast<std::size_t>(p)].queue, p);
    EXPECT_GE(analysis.ackWait[static_cast<std::size_t>(p)].count, 1);
  }
  // The kill fires kill/heap-wipe/poison events and marks the progress
  // row dead — scan the raw lanes for the kinds.
  bool sawKill = false, sawWipe = false, sawPoison = false;
  for (const auto& lane : root.at("flight").at("lanes").items()) {
    for (const auto& ev : lane.at("events").items()) {
      const std::string& kind = ev.at("kind").asString();
      sawKill = sawKill || kind == "kill";
      sawWipe = sawWipe || kind == "heap_wipe";
      sawPoison = sawPoison || kind == "poison";
    }
  }
  EXPECT_TRUE(sawKill);
  EXPECT_TRUE(sawWipe);
  EXPECT_TRUE(sawPoison);
  for (const auto& q : analysis.queues) {
    if (q.queue == 2) {
      EXPECT_TRUE(q.dead);
    }
  }
}

TEST(FlightRecorderTest, DisabledRecorderYieldsEmptyDump) {
  apgas::RuntimeConfig cfg;
  cfg.numPlaces = 2;
  cfg.backend = apgas::Backend::Threads;
  cfg.flightRecorder = false;
  apgas::WorldGuard guard(cfg);
  apgas::Runtime& rt = apgas::Runtime::world();
  EXPECT_EQ(rt.flightRecorder(), nullptr);
  EXPECT_EQ(rt.stallWatchdog(), nullptr);
  apgas::finish([] { apgas::asyncAt(apgas::Place(1), [] {}); });
  EXPECT_TRUE(rt.flightDump().empty());
}

}  // namespace
