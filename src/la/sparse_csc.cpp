#include "la/sparse_csc.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace rgml::la {

SparseCSC::SparseCSC(long m, long n)
    : m_(m), n_(n), colPtr_(static_cast<std::size_t>(n) + 1, 0) {
  if (m < 0 || n < 0) throw std::invalid_argument("SparseCSC: negative dim");
}

SparseCSC::SparseCSC(long m, long n, std::vector<long> colPtr,
                     std::vector<long> rowIdx, std::vector<double> values)
    : m_(m),
      n_(n),
      colPtr_(std::move(colPtr)),
      rowIdx_(std::move(rowIdx)),
      values_(std::move(values)) {
  if (static_cast<long>(colPtr_.size()) != n_ + 1) {
    throw std::invalid_argument("SparseCSC: colPtr size != n+1");
  }
  if (colPtr_.back() != static_cast<long>(values_.size()) ||
      rowIdx_.size() != values_.size()) {
    throw std::invalid_argument("SparseCSC: inconsistent nnz arrays");
  }
}

double SparseCSC::at(long i, long j) const {
  const auto lo = rowIdx_.begin() + colPtr_[static_cast<std::size_t>(j)];
  const auto hi = rowIdx_.begin() + colPtr_[static_cast<std::size_t>(j) + 1];
  const auto it = std::lower_bound(lo, hi, i);
  if (it == hi || *it != i) return 0.0;
  return values_[static_cast<std::size_t>(it - rowIdx_.begin())];
}

long SparseCSC::countNonZerosIn(long r0, long c0, long h, long w) const {
  long count = 0;
  for (long j = c0; j < c0 + w; ++j) {
    const auto colBegin = rowIdx_.begin() + colPtr_[static_cast<std::size_t>(j)];
    const auto colEnd =
        rowIdx_.begin() + colPtr_[static_cast<std::size_t>(j) + 1];
    const auto lo = std::lower_bound(colBegin, colEnd, r0);
    const auto hi = std::lower_bound(lo, colEnd, r0 + h);
    count += static_cast<long>(hi - lo);
  }
  return count;
}

SparseCSC SparseCSC::subMatrix(long r0, long c0, long h, long w) const {
  assert(r0 >= 0 && c0 >= 0 && r0 + h <= m_ && c0 + w <= n_);
  const long outNnz = countNonZerosIn(r0, c0, h, w);
  std::vector<long> colPtr(static_cast<std::size_t>(w) + 1, 0);
  std::vector<long> rowIdx;
  std::vector<double> values;
  rowIdx.reserve(static_cast<std::size_t>(outNnz));
  values.reserve(static_cast<std::size_t>(outNnz));
  for (long j = 0; j < w; ++j) {
    const long src = c0 + j;
    const long begin = colPtr_[static_cast<std::size_t>(src)];
    const long end = colPtr_[static_cast<std::size_t>(src) + 1];
    const auto lo = std::lower_bound(rowIdx_.begin() + begin,
                                     rowIdx_.begin() + end, r0);
    const auto hi =
        std::lower_bound(lo, rowIdx_.begin() + end, r0 + h);
    for (auto it = lo; it != hi; ++it) {
      rowIdx.push_back(*it - r0);
      values.push_back(values_[static_cast<std::size_t>(it - rowIdx_.begin())]);
    }
    colPtr[static_cast<std::size_t>(j) + 1] =
        static_cast<long>(rowIdx.size());
  }
  return SparseCSC(h, w, std::move(colPtr), std::move(rowIdx),
                   std::move(values));
}

void SparseCSC::pasteSubFrom(const SparseCSC& sub, long dr, long dc) {
  assert(dr >= 0 && dc >= 0 && dr + sub.m_ <= m_ && dc + sub.n_ <= n_);
  // Column-wise sorted merge of the incoming entries into the existing
  // arrays. The restore path pastes disjoint regions, so duplicates cannot
  // occur; if they do (programming error) the incoming value wins.
  std::vector<long> colPtr(static_cast<std::size_t>(n_) + 1, 0);
  std::vector<long> rowIdx;
  std::vector<double> values;
  rowIdx.reserve(values_.size() + sub.values_.size());
  values.reserve(values_.size() + sub.values_.size());

  for (long j = 0; j < n_; ++j) {
    const long oldBegin = colPtr_[static_cast<std::size_t>(j)];
    const long oldEnd = colPtr_[static_cast<std::size_t>(j) + 1];
    long oi = oldBegin;
    long si = -1, sEnd = -1;
    if (j >= dc && j < dc + sub.n_) {
      si = sub.colPtr_[static_cast<std::size_t>(j - dc)];
      sEnd = sub.colPtr_[static_cast<std::size_t>(j - dc) + 1];
    }
    while (oi < oldEnd || (si >= 0 && si < sEnd)) {
      const long oldRow = oi < oldEnd ? rowIdx_[static_cast<std::size_t>(oi)]
                                      : m_;
      const long subRow = (si >= 0 && si < sEnd)
                              ? sub.rowIdx_[static_cast<std::size_t>(si)] + dr
                              : m_;
      if (subRow <= oldRow) {
        rowIdx.push_back(subRow);
        values.push_back(sub.values_[static_cast<std::size_t>(si)]);
        ++si;
        if (subRow == oldRow) ++oi;  // incoming value wins
      } else {
        rowIdx.push_back(oldRow);
        values.push_back(values_[static_cast<std::size_t>(oi)]);
        ++oi;
      }
    }
    colPtr[static_cast<std::size_t>(j) + 1] =
        static_cast<long>(rowIdx.size());
  }
  colPtr_ = std::move(colPtr);
  rowIdx_ = std::move(rowIdx);
  values_ = std::move(values);
}

}  // namespace rgml::la
