// The chaos schedule sweeper: exhaustive fault-space exploration with
// golden-result divergence checking.
//
// For every scenario in the cross product {kill point: each iteration
// boundary, plus mid-step dispatch indices} x {victim place} x {restore
// mode} x {application}, the sweeper re-initialises the simulated world,
// arms a FaultInjector with the schedule, runs the application through
// the ResilientExecutor, and classifies the outcome against the cached
// golden (failure-free) run:
//
//   * Ok              — converged to the golden result;
//   * Divergence      — terminated with a different answer (the framework's
//                       core invariant is violated);
//   * NonTermination  — the step budget ran out (a restore that keeps
//                       rewinding, or a kill loop);
//   * LeakedPlaces    — elastically created places left alive outside the
//                       final working group;
//   * ExecutorError   — the executor threw (unexpected for an enumerated
//                       recoverable schedule);
//   * Unrecoverable   — failed for a reason that is *by design*
//                       unrecoverable (e.g. no committed checkpoint);
//                       enumeration avoids these, so seeing one is
//                       reported but distinguished from bugs.
//
// Failing schedules are automatically shrunk to a minimal reproducer
// (kills dropped one at a time, dispatch indices lowered) and the
// ready-to-paste FaultInjector setup is attached to the report.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/golden.h"
#include "harness/schedule.h"

namespace rgml::harness {

enum class OutcomeKind {
  Ok,
  Divergence,
  NonTermination,
  LeakedPlaces,
  ExecutorError,
  Unrecoverable,
};

[[nodiscard]] const char* toString(OutcomeKind kind);

/// True for every kind the sweeper treats as a failed scenario (everything
/// except Ok and Unrecoverable).
[[nodiscard]] bool isFailure(OutcomeKind kind);

struct ScenarioOutcome {
  AppKind app = AppKind::LinReg;
  FaultSchedule schedule;
  OutcomeKind kind = OutcomeKind::Ok;
  std::string detail;              ///< first difference / exception text
  long firstDivergentIteration = -1;  ///< from the diagnosis rerun; -1 n/a
  long failuresHandled = 0;
  double restoreMs = 0.0;          ///< simulated ms spent restoring
  double totalMs = 0.0;            ///< simulated ms of the whole run
  /// For failures: the shrunk schedule and its FaultInjector setup.
  FaultSchedule minimalReproducer;
  std::string reproducerSetup;
};

struct SweepOptions {
  std::vector<AppKind> apps{AppKind::LinReg};
  std::vector<framework::RestoreMode> modes = allRestoreModes();
  long iterations = 12;
  std::size_t places = 6;   ///< working group size (place 0 included)
  std::size_t spares = 2;   ///< reserve for ReplaceRedundant
  long checkpointInterval = 4;
  /// Include mid-step killAtDispatch points derived from the golden run's
  /// dispatch counts (one early and one mid-iteration point per sampled
  /// iteration).
  bool midStepKills = false;
  /// Sweep every victim in 1..places-1; false = sample {1, places-1}.
  bool allVictims = true;
  /// Add two-kill schedules (distinct iterations and victims).
  bool pairKills = false;
  /// Shrink failing schedules to minimal reproducers.
  bool shrinkFailures = true;
  double tolerance = 1e-6;
  /// Step budget = stepBudgetFactor * iterations (+ a constant slack);
  /// exceeded = NonTermination.
  long stepBudgetFactor = 10;
  std::uint64_t seed = 42;
  /// App construction hook; defaults to makeChaosApp. Tests substitute
  /// deliberately-broken wrappers to validate the sweeper's detection and
  /// shrinking (mutation testing).
  ChaosAppFactory appFactory;
};

struct SweepResult {
  SweepOptions options;
  long scenariosRun = 0;
  std::vector<ScenarioOutcome> outcomes;  ///< one per scenario, in order
  /// Failed outcomes (subset of `outcomes`, copied for convenience).
  std::vector<ScenarioOutcome> failures;
  /// Max simulated restore ms over the scenarios of each mode (keyed by
  /// toString(RestoreMode)).
  std::map<std::string, double> worstRestoreMs;

  [[nodiscard]] bool allOk() const noexcept { return failures.empty(); }
};

class ChaosSweeper {
 public:
  explicit ChaosSweeper(SweepOptions options);

  /// Enumerate and run the whole sweep.
  [[nodiscard]] SweepResult run();

  /// Run one schedule against `app` in a fresh world and classify it
  /// (used by run(), the shrinker, and tests that probe single scenarios).
  [[nodiscard]] ScenarioOutcome runScenario(AppKind app,
                                            const FaultSchedule& schedule);

  /// Greedily shrink a failing schedule to a minimal reproducer: try each
  /// shrinkCandidates() neighbour, adopt any that still fails, repeat
  /// until none does.
  [[nodiscard]] FaultSchedule shrink(AppKind app,
                                     const FaultSchedule& failing);

  /// The fault-space axes for `app` (golden run must be available — this
  /// computes it on demand; dispatch points are derived from golden
  /// boundary dispatch counts).
  [[nodiscard]] ScheduleSpace scheduleSpace(AppKind app);

 private:
  const GoldenRun& golden(AppKind app);
  void initWorld();
  [[nodiscard]] std::vector<apgas::PlaceId> spareIds() const;

  SweepOptions options_;
  std::map<AppKind, GoldenRun> golden_;
};

}  // namespace rgml::harness
