file(REMOVE_RECURSE
  "CMakeFiles/fig5_linreg_restore.dir/fig5_linreg_restore.cpp.o"
  "CMakeFiles/fig5_linreg_restore.dir/fig5_linreg_restore.cpp.o.d"
  "fig5_linreg_restore"
  "fig5_linreg_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_linreg_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
