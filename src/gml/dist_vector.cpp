#include "gml/dist_vector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "apgas/runtime.h"
#include "gml/collectives.h"
#include "gml/dist_block_matrix.h"
#include "gml/dup_vector.h"
#include "la/grid.h"
#include "la/kernels.h"
#include "la/rand.h"

namespace rgml::gml {

using apgas::Place;
using apgas::PlaceGroup;
using apgas::Runtime;
using apgas::ateach;

DistVector::DistVector(long n, PlaceGroup pg) : n_(n), pg_(std::move(pg)) {}

DistVector DistVector::make(long n, const PlaceGroup& pg) {
  if (pg.empty()) throw apgas::ApgasError("DistVector: empty place group");
  if (n < static_cast<long>(pg.size())) {
    throw apgas::ApgasError("DistVector: fewer elements than places");
  }
  DistVector v(n, pg);
  v.alloc();
  return v;
}

void DistVector::alloc() {
  const long parts = static_cast<long>(pg_.size());
  segSizes_ = la::Grid::segmentSizes(n_, parts);
  segOffsets_.resize(segSizes_.size());
  long off = 0;
  for (std::size_t s = 0; s < segSizes_.size(); ++s) {
    segOffsets_[s] = off;
    off += segSizes_[s];
  }
  const auto& sizes = segSizes_;
  const PlaceGroup& pg = pg_;
  plh_ = apgas::PlaceLocalHandle<la::Vector>::make(pg_, [&sizes, &pg](Place p) {
    const long idx = pg.indexOf(p);
    return std::make_shared<la::Vector>(sizes[static_cast<std::size_t>(idx)]);
  });
}

long DistVector::segOffset(long idx) const {
  return segOffsets_[static_cast<std::size_t>(idx)];
}

long DistVector::segSize(long idx) const {
  return segSizes_[static_cast<std::size_t>(idx)];
}

la::Vector& DistVector::localSegment() const { return plh_.local(); }

void DistVector::init(double v) {
  ateach(pg_, [&](Place) {
    la::Vector& seg = localSegment();
    seg.setAll(v);
    Runtime::world().chargeDenseFlops(static_cast<double>(seg.size()));
  });
}

void DistVector::initRandom(std::uint64_t seed, double lo, double hi) {
  ateach(pg_, [&](Place p) {
    const long idx = pg_.indexOf(p);
    la::Vector& seg = localSegment();
    const long off = segOffset(idx);
    for (long i = 0; i < seg.size(); ++i) {
      seg[i] = la::hashedUniform(seed, static_cast<std::uint64_t>(off + i),
                                 lo, hi);
    }
    Runtime::world().chargeDenseFlops(static_cast<double>(seg.size()));
  });
}

void DistVector::init(const std::function<double(long)>& fn) {
  ateach(pg_, [&](Place p) {
    const long idx = pg_.indexOf(p);
    la::Vector& seg = localSegment();
    const long off = segOffset(idx);
    for (long i = 0; i < seg.size(); ++i) seg[i] = fn(off + i);
    Runtime::world().chargeDenseFlops(static_cast<double>(seg.size()));
  });
}

bool DistVector::multIsAligned(const DistBlockMatrix& A) const {
  // Aligned iff every block's row range falls inside the segment owned by
  // the same place that owns the block (requires A's places to be members
  // of this vector's group). Then the whole product is local per place and
  // a single fused finish suffices (GML's common fast path).
  const la::Grid& grid = A.grid();
  const la::DistMap& map = A.distMap();
  for (long b = 0; b < grid.numBlocks(); ++b) {
    const Place owner =
        A.placeGroup()(static_cast<std::size_t>(map.placeIndexOf(b)));
    const long myIdx = pg_.indexOf(owner);
    if (myIdx < 0) return false;
    const long rb = grid.blockRow(b);
    const long r0 = grid.rowBlockStart(rb);
    const long r1 = r0 + grid.rowBlockSize(rb);
    if (r0 < segOffset(myIdx) || r1 > segOffset(myIdx) + segSize(myIdx)) {
      return false;
    }
  }
  return true;
}

void DistVector::mult(const DistBlockMatrix& A, const DupVector& x) {
  if (A.rows() != n_ || A.cols() != x.size()) {
    throw apgas::ApgasError("DistVector::mult: dimension mismatch");
  }
  Runtime& rt = Runtime::world();
  if (multIsAligned(A)) {
    // Fast path: one finish; each place zeroes its segment and accumulates
    // its blocks into it directly.
    ateach(pg_, [&](Place p) {
      la::Vector& seg = localSegment();
      seg.setAll(0.0);
      rt.chargeDenseFlops(static_cast<double>(seg.size()));
      auto bs = A.blockSetAt(p.id());
      if (!bs) return;  // this place holds no blocks of A
      if (x.placeGroup().indexOf(p) < 0) {
        throw apgas::ApgasError(
            "DistVector::mult: x is not duplicated at a matrix place");
      }
      const la::Vector& xloc = x.local();
      const long idx = pg_.indexOf(p);
      for (const la::MatrixBlock& block : *bs) {
        const auto xslice =
            xloc.span().subspan(static_cast<std::size_t>(block.colOffset()),
                                static_cast<std::size_t>(block.cols()));
        auto yslice = seg.span().subspan(
            static_cast<std::size_t>(block.rowOffset() - segOffset(idx)),
            static_cast<std::size_t>(block.rows()));
        block.multAdd(xslice, yslice);
        if (block.isSparse()) {
          rt.chargeSparseFlops(block.multFlops());
        } else {
          rt.chargeDenseFlops(block.multFlops());
        }
      }
    });
    return;
  }
  // General path, pass 1: zero the result segments.
  ateach(pg_, [&](Place) {
    la::Vector& seg = localSegment();
    seg.setAll(0.0);
    rt.chargeDenseFlops(static_cast<double>(seg.size()));
  });
  // Pass 2: every place multiplies its blocks against its local replica of
  // x and scatter-adds the partial row ranges into the owning segments.
  const PlaceGroup& apg = A.placeGroup();
  const long parts = static_cast<long>(pg_.size());
  ateach(apg, [&](Place p) {
    if (x.placeGroup().indexOf(p) < 0) {
      throw apgas::ApgasError(
          "DistVector::mult: x is not duplicated at a matrix place");
    }
    const la::Vector& xloc = x.local();
    for (const la::MatrixBlock& block : A.localBlockSet()) {
      la::Vector tmp(block.rows());
      const auto xslice =
          xloc.span().subspan(static_cast<std::size_t>(block.colOffset()),
                              static_cast<std::size_t>(block.cols()));
      block.multAdd(xslice, tmp.span());
      if (block.isSparse()) {
        rt.chargeSparseFlops(block.multFlops());
      } else {
        rt.chargeDenseFlops(block.multFlops());
      }
      // Scatter-add tmp into the segments covering the block's row range.
      const long r0 = block.rowOffset();
      const long r1 = r0 + block.rows();
      const long sFirst = la::Grid::segmentOf(n_, parts, r0);
      const long sLast = la::Grid::segmentOf(n_, parts, r1 - 1);
      for (long s = sFirst; s <= sLast; ++s) {
        const long g0 = std::max(r0, segOffset(s));
        const long g1 = std::min(r1, segOffset(s) + segSize(s));
        const auto bytes =
            static_cast<std::uint64_t>(g1 - g0) * sizeof(double);
        const Place owner = pg_(static_cast<std::size_t>(s));
        if (owner.isDead()) throw apgas::DeadPlaceException(owner.id());
        if (owner == p) {
          rt.chargeLocalCopy(bytes);
        } else {
          rt.chargeComm(owner, bytes);
        }
        auto seg = plh_.atPlace(owner.id());
        if (!seg) throw apgas::DeadPlaceException(owner.id());
        {
          // On the Threads backend several matrix places scatter-add into
          // the same owner segment concurrently; serialise the += so the
          // accumulation is race-free. The combine ORDER still depends on
          // thread scheduling there, so the unaligned path is not
          // bit-reproducible across backends — the apps keep their
          // matrices row-aligned and take the fast path above, which
          // writes only place-local segments.
          std::lock_guard<std::mutex> lock(*scatterMu_);
          for (long g = g0; g < g1; ++g) {
            (*seg)[g - segOffset(s)] += tmp[g - r0];
          }
        }
        rt.chargeDenseFlops(static_cast<double>(g1 - g0));
      }
    }
  });
}

double DistVector::dot(const DupVector& x) const {
  if (x.size() != n_) {
    throw apgas::ApgasError("DistVector::dot: dimension mismatch");
  }
  return allReduceSum(pg_, [&](Place p, long idx) {
    if (x.placeGroup().indexOf(p) < 0) {
      throw apgas::ApgasError("DistVector::dot: x not duplicated here");
    }
    const la::Vector& seg = localSegment();
    const auto xslice =
        x.local().span().subspan(static_cast<std::size_t>(segOffset(idx)),
                                 static_cast<std::size_t>(seg.size()));
    Runtime::world().chargeDenseFlops(2.0 * static_cast<double>(seg.size()));
    return la::dot(seg.span(), xslice);
  });
}

double DistVector::dot(const DistVector& o) const {
  if (o.n_ != n_ || o.pg_.size() != pg_.size()) {
    throw apgas::ApgasError("DistVector::dot: incompatible distributions");
  }
  return allReduceSum(pg_, [&](Place, long idx) {
    const la::Vector& seg = localSegment();
    const la::Vector& oseg = *o.plh_.atPlace(pg_(static_cast<std::size_t>(idx)).id());
    Runtime::world().chargeDenseFlops(2.0 * static_cast<double>(seg.size()));
    return la::dot(seg.span(), oseg.span());
  });
}

void DistVector::scale(double a) {
  ateach(pg_, [&](Place) {
    la::Vector& seg = localSegment();
    la::scale(seg.span(), a);
    Runtime::world().chargeDenseFlops(static_cast<double>(seg.size()));
  });
}

void DistVector::cellAdd(const DistVector& o) {
  if (o.n_ != n_ || o.pg_.size() != pg_.size()) {
    throw apgas::ApgasError("DistVector::cellAdd: incompatible distributions");
  }
  ateach(pg_, [&](Place p) {
    la::Vector& seg = localSegment();
    const la::Vector& oseg = *o.plh_.atPlace(p.id());
    la::cellAdd(oseg.span(), seg.span());
    Runtime::world().chargeDenseFlops(static_cast<double>(seg.size()));
  });
}

void DistVector::axpy(double a, const DistVector& x) {
  if (x.n_ != n_ || x.pg_.size() != pg_.size()) {
    throw apgas::ApgasError("DistVector::axpy: incompatible distributions");
  }
  ateach(pg_, [&](Place p) {
    la::Vector& seg = localSegment();
    const la::Vector& xseg = *x.plh_.atPlace(p.id());
    la::axpy(a, xseg.span(), seg.span());
    Runtime::world().chargeDenseFlops(2.0 * static_cast<double>(seg.size()));
  });
}

void DistVector::cellMult(const DistVector& o) {
  if (o.n_ != n_ || o.pg_.size() != pg_.size()) {
    throw apgas::ApgasError(
        "DistVector::cellMult: incompatible distributions");
  }
  ateach(pg_, [&](Place p) {
    la::Vector& seg = localSegment();
    const la::Vector& oseg = *o.plh_.atPlace(p.id());
    for (long i = 0; i < seg.size(); ++i) seg[i] *= oseg[i];
    Runtime::world().chargeDenseFlops(static_cast<double>(seg.size()));
  });
}

void DistVector::cellDiv(const DistVector& o) {
  if (o.n_ != n_ || o.pg_.size() != pg_.size()) {
    throw apgas::ApgasError(
        "DistVector::cellDiv: incompatible distributions");
  }
  ateach(pg_, [&](Place p) {
    la::Vector& seg = localSegment();
    const la::Vector& oseg = *o.plh_.atPlace(p.id());
    for (long i = 0; i < seg.size(); ++i) seg[i] /= oseg[i];
    Runtime::world().chargeDenseFlops(static_cast<double>(seg.size()));
  });
}

void DistVector::copyFromDup(const DupVector& src) {
  if (src.size() != n_) {
    throw apgas::ApgasError("DistVector::copyFromDup: size mismatch");
  }
  ateach(pg_, [&](Place p) {
    if (src.placeGroup().indexOf(p) < 0) {
      throw apgas::ApgasError(
          "DistVector::copyFromDup: src not duplicated at this place");
    }
    const long idx = pg_.indexOf(p);
    la::Vector& seg = localSegment();
    la::copy(src.local().span().subspan(
                 static_cast<std::size_t>(segOffset(idx)),
                 static_cast<std::size_t>(seg.size())),
             seg.span());
    Runtime::world().chargeLocalCopy(seg.bytes());
  });
}

double DistVector::max() const {
  return allReduce(
      pg_,
      [&](Place, long) {
        const la::Vector& seg = localSegment();
        double best = seg[0];
        for (long i = 1; i < seg.size(); ++i) best = std::max(best, seg[i]);
        Runtime::world().chargeDenseFlops(static_cast<double>(seg.size()));
        return best;
      },
      [](double a, double b) { return std::max(a, b); },
      -std::numeric_limits<double>::infinity());
}

double DistVector::min() const {
  return allReduce(
      pg_,
      [&](Place, long) {
        const la::Vector& seg = localSegment();
        double best = seg[0];
        for (long i = 1; i < seg.size(); ++i) best = std::min(best, seg[i]);
        Runtime::world().chargeDenseFlops(static_cast<double>(seg.size()));
        return best;
      },
      [](double a, double b) { return std::min(a, b); },
      std::numeric_limits<double>::infinity());
}

void DistVector::copyFrom(const DistVector& o) {
  if (o.n_ != n_ || o.pg_.size() != pg_.size()) {
    throw apgas::ApgasError(
        "DistVector::copyFrom: incompatible distributions");
  }
  ateach(pg_, [&](Place p) {
    la::Vector& seg = localSegment();
    const la::Vector& oseg = *o.plh_.atPlace(p.id());
    la::copy(oseg.span(), seg.span());
    Runtime::world().chargeLocalCopy(seg.bytes());
  });
}

void DistVector::map(const std::function<double(double, long)>& fn,
                     double flopsPerElement) {
  ateach(pg_, [&](Place p) {
    const long idx = pg_.indexOf(p);
    la::Vector& seg = localSegment();
    const long off = segOffset(idx);
    for (long i = 0; i < seg.size(); ++i) seg[i] = fn(seg[i], off + i);
    Runtime::world().chargeDenseFlops(flopsPerElement *
                                      static_cast<double>(seg.size()));
  });
}

void DistVector::map2(const DistVector& o,
                      const std::function<double(double, double, long)>& fn,
                      double flopsPerElement) {
  if (o.n_ != n_ || o.pg_.size() != pg_.size()) {
    throw apgas::ApgasError("DistVector::map2: incompatible distributions");
  }
  ateach(pg_, [&](Place p) {
    const long idx = pg_.indexOf(p);
    la::Vector& seg = localSegment();
    const la::Vector& oseg = *o.plh_.atPlace(p.id());
    const long off = segOffset(idx);
    for (long i = 0; i < seg.size(); ++i) {
      seg[i] = fn(seg[i], oseg[i], off + i);
    }
    Runtime::world().chargeDenseFlops(flopsPerElement *
                                      static_cast<double>(seg.size()));
  });
}

double DistVector::norm2() const { return std::sqrt(dot(*this)); }

double DistVector::sum() const {
  return allReduceSum(pg_, [&](Place, long) {
    const la::Vector& seg = localSegment();
    Runtime::world().chargeDenseFlops(static_cast<double>(seg.size()));
    return la::sum(seg.span());
  });
}

void DistVector::copyTo(la::Vector& dst) const {
  if (dst.size() != n_) {
    throw apgas::ApgasError("DistVector::copyTo: size mismatch");
  }
  Runtime& rt = Runtime::world();
  const Place here = rt.here();
  for (std::size_t s = 0; s < pg_.size(); ++s) {
    const Place owner = pg_(s);
    if (owner.isDead()) throw apgas::DeadPlaceException(owner.id());
    auto seg = plh_.atPlace(owner.id());
    if (!seg) throw apgas::DeadPlaceException(owner.id());
    if (owner == here) {
      rt.chargeLocalCopy(seg->bytes());
    } else {
      rt.chargeComm(owner, seg->bytes());
    }
    la::copy(seg->span(),
             dst.span().subspan(
                 static_cast<std::size_t>(segOffset(static_cast<long>(s))),
                 static_cast<std::size_t>(seg->size())));
  }
}

void DistVector::copyFrom(const la::Vector& src) {
  if (src.size() != n_) {
    throw apgas::ApgasError("DistVector::copyFrom: size mismatch");
  }
  Runtime& rt = Runtime::world();
  const Place here = rt.here();
  for (std::size_t s = 0; s < pg_.size(); ++s) {
    const Place owner = pg_(s);
    if (owner.isDead()) throw apgas::DeadPlaceException(owner.id());
    auto seg = plh_.atPlace(owner.id());
    if (!seg) throw apgas::DeadPlaceException(owner.id());
    if (owner == here) {
      rt.chargeLocalCopy(seg->bytes());
    } else {
      rt.chargeComm(owner, seg->bytes());
    }
    la::copy(src.span().subspan(
                 static_cast<std::size_t>(segOffset(static_cast<long>(s))),
                 static_cast<std::size_t>(seg->size())),
             seg->span());
  }
}

double DistVector::at(long i) const {
  if (i < 0 || i >= n_) throw apgas::ApgasError("DistVector::at: range");
  Runtime& rt = Runtime::world();
  const long s = la::Grid::segmentOf(n_, static_cast<long>(pg_.size()), i);
  const Place owner = pg_(static_cast<std::size_t>(s));
  if (owner.isDead()) throw apgas::DeadPlaceException(owner.id());
  auto seg = plh_.atPlace(owner.id());
  if (!seg) throw apgas::DeadPlaceException(owner.id());
  if (owner != rt.here()) rt.chargeComm(owner, sizeof(double));
  return (*seg)[i - segOffset(s)];
}

void DistVector::remake(const PlaceGroup& newPg) {
  if (newPg.empty()) {
    throw apgas::ApgasError("DistVector::remake: empty group");
  }
  plh_.destroy();
  pg_ = newPg;
  alloc();
}

std::shared_ptr<resilient::Snapshot> DistVector::makeSnapshot() const {
  auto snapshot = std::make_shared<resilient::Snapshot>(pg_);
  ateach(pg_, [&](Place p) {
    const long idx = pg_.indexOf(p);
    snapshot->save(idx, std::make_shared<resilient::VectorValue>(
                            localSegment(), segOffset(idx)));
  });
  return snapshot;
}

void DistVector::restoreSnapshot(const resilient::Snapshot& snapshot) {
  Runtime& rt = Runtime::world();
  const auto keys = snapshot.keys();
  ateach(pg_, [&](Place p) {
    const long idx = pg_.indexOf(p);
    la::Vector& seg = localSegment();
    const long myStart = segOffset(idx);
    const long myEnd = myStart + seg.size();
    for (long key : keys) {
      const auto located = snapshot.locate(key);
      auto value = std::dynamic_pointer_cast<const resilient::VectorValue>(
          located.value);
      if (!value) {
        throw apgas::ApgasError(
            "DistVector::restoreSnapshot: incompatible snapshot value");
      }
      const long vStart = value->offset();
      const long vEnd = vStart + value->size();
      const long g0 = std::max(myStart, vStart);
      const long g1 = std::min(myEnd, vEnd);
      if (g0 >= g1) continue;  // no overlap with this saved segment
      const auto bytes = static_cast<std::uint64_t>(g1 - g0) * sizeof(double);
      if (located.holder != p) {
        rt.chargeComm(located.holder, bytes);
      }
      rt.chargeSerialization(bytes);
      la::copy(value->data().span().subspan(
                   static_cast<std::size_t>(g0 - vStart),
                   static_cast<std::size_t>(g1 - g0)),
               seg.span().subspan(static_cast<std::size_t>(g0 - myStart),
                                  static_cast<std::size_t>(g1 - g0)));
    }
  });
}

}  // namespace rgml::gml
