# Empty compiler generated dependencies file for linreg_training.
# This may be replaced when dependencies are built.
