// BlockSet: the per-place container of matrix blocks
// (x10.matrix.distblock.BlockSet).
//
// Allowing a place to hold a *set* of blocks (instead of exactly one) is
// what lets the shrink restoration mode remap existing blocks onto fewer
// places without repartitioning the matrix (paper §III-A, §IV-A2).
#pragma once

#include <vector>

#include "la/block.h"

namespace rgml::la {

class BlockSet {
 public:
  BlockSet() = default;

  void add(MatrixBlock block) { blocks_.push_back(std::move(block)); }

  [[nodiscard]] std::size_t size() const noexcept { return blocks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return blocks_.empty(); }

  [[nodiscard]] MatrixBlock& operator[](std::size_t i) { return blocks_[i]; }
  [[nodiscard]] const MatrixBlock& operator[](std::size_t i) const {
    return blocks_[i];
  }

  [[nodiscard]] auto begin() noexcept { return blocks_.begin(); }
  [[nodiscard]] auto end() noexcept { return blocks_.end(); }
  [[nodiscard]] auto begin() const noexcept { return blocks_.begin(); }
  [[nodiscard]] auto end() const noexcept { return blocks_.end(); }

  /// The block with grid coordinates (rb, cb), or nullptr.
  [[nodiscard]] MatrixBlock* find(long rb, long cb);
  [[nodiscard]] const MatrixBlock* find(long rb, long cb) const;

  /// Total payload bytes across the set.
  [[nodiscard]] std::size_t bytes() const;

  /// Total mat-vec flops across the set.
  [[nodiscard]] double multFlops() const;

  /// Highest block version in the set (0 when empty or untouched) — a
  /// cheap "anything dirty since version v?" probe for delta checkpoints.
  [[nodiscard]] std::uint64_t maxVersion() const;

  void clear() { blocks_.clear(); }

 private:
  std::vector<MatrixBlock> blocks_;
};

}  // namespace rgml::la
