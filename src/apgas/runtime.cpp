#include "apgas/runtime.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <thread>

#include "apgas/threads/threads_backend.h"
#include "obs/flight/forensic_dump.h"
#include "obs/trace_sink.h"

namespace rgml::apgas {

namespace {
/// Modelled size of a task/control envelope (headers, closure id, ...).
constexpr std::uint64_t kEnvelopeBytes = 64;
/// Modelled size of a resilient-finish control message.
constexpr std::uint64_t kCtrlBytes = 48;
}  // namespace

thread_local std::unique_ptr<Runtime> Runtime::instance_;
thread_local Runtime* Runtime::borrowed_ = nullptr;

Runtime::Runtime(const RuntimeConfig& config)
    : cm_(config.costModel),
      backendKind_(config.backend),
      resilient_(config.resilientFinish),
      clocks_(static_cast<std::size_t>(config.numPlaces), 0.0),
      heaps_(static_cast<std::size_t>(config.numPlaces)) {
  hereStack_.push_back(0);
  if (backendKind_ == Backend::Threads) {
    engine_ = std::make_unique<threads::ThreadsBackend>(*this, config);
  }
}

Runtime::~Runtime() = default;

obs::flight::FlightRecorder* Runtime::flightRecorder() const noexcept {
  return engine_ ? engine_->flight() : nullptr;
}

obs::flight::StallWatchdog* Runtime::stallWatchdog() const noexcept {
  return engine_ ? engine_->watchdog() : nullptr;
}

std::string Runtime::flightDump() const {
  const obs::flight::FlightRecorder* rec = flightRecorder();
  if (rec == nullptr) return {};
  return obs::flight::forensicJson(*rec, stallWatchdog());
}

void Runtime::init(const RuntimeConfig& config) {
  if (config.numPlaces < 1) {
    throw ApgasError("Runtime::init: need at least 1 place");
  }
  instance_.reset();  // tear down the old world before building the new
  instance_.reset(new Runtime(config));
}

void Runtime::init(int numPlaces, const CostModel& cm, bool resilientFinish) {
  RuntimeConfig config;
  config.numPlaces = numPlaces;
  config.costModel = cm;
  config.resilientFinish = resilientFinish;
  init(config);
}

Runtime& Runtime::world() {
  if (instance_) return *instance_;
  // Threads-backend place workers don't own a world; they borrow the one
  // that owns them, so application code runs unchanged on either backend.
  if (borrowed_ != nullptr) return *borrowed_;
  std::ostringstream os;
  os << "Runtime::world(): no world on thread " << std::this_thread::get_id()
     << " (never initialised, or already torn down); call Runtime::init()"
        " or open a WorldGuard on this thread first";
  throw ApgasError(os.str());
}

bool Runtime::initialized() {
  return static_cast<bool>(instance_) || borrowed_ != nullptr;
}

std::unique_ptr<Runtime> Runtime::detach() { return std::move(instance_); }

void Runtime::attach(std::unique_ptr<Runtime> world) {
  instance_ = std::move(world);
}

void Runtime::setBorrowed(Runtime* world) noexcept { borrowed_ = world; }

int Runtime::numPlaces() const noexcept {
  if (engine_) return engine_->numPlaces();
  return static_cast<int>(clocks_.size());
}

int Runtime::numLivePlaces() const noexcept {
  if (engine_) return engine_->numLivePlaces();
  return numPlaces() - static_cast<int>(dead_.size());
}

bool Runtime::isDead(PlaceId p) const noexcept {
  if (engine_) return engine_->isDead(p);
  return dead_.contains(p);
}

Place Runtime::here() const {
  if (engine_) return engine_->here();
  return Place(hereStack_.back());
}

long Runtime::dispatchCount() const noexcept {
  return dispatchCount_.load(std::memory_order_relaxed);
}

void Runtime::setDispatchHook(std::function<void(long)> hook) {
  std::lock_guard<std::mutex> lock(hookMutex_);
  dispatchHook_ = std::move(hook);
}

void Runtime::noteDispatch() {
  const long count = dispatchCount_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::function<void(long)> hook;
  {
    std::lock_guard<std::mutex> lock(hookMutex_);
    hook = dispatchHook_;
  }
  // Invoke a copy outside the lock: the hook may disarm itself via
  // setDispatchHook({}) or kill a place (which takes other locks).
  if (hook) hook(count);
}

double Runtime::clock(PlaceId p) const {
  if (engine_) return engine_->now();
  return clocks_.at(static_cast<std::size_t>(p));
}

double Runtime::time() const {
  if (engine_) return engine_->now();
  return clocks_.at(0);
}

std::vector<PlaceId> Runtime::addPlaces(int n) {
  if (engine_) {
    auto fresh = engine_->addPlaces(n);
    std::lock_guard<std::mutex> lock(heapMutex_);
    heaps_.resize(heaps_.size() + fresh.size());
    return fresh;
  }
  // Joining places start "now": at the maximum clock over live places, as a
  // real dynamically-created process would.
  double now = 0.0;
  for (int p = 0; p < numPlaces(); ++p) {
    if (!isDead(p)) now = std::max(now, clocks_[static_cast<std::size_t>(p)]);
  }
  std::vector<PlaceId> fresh;
  fresh.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    fresh.push_back(numPlaces());
    clocks_.push_back(now);
    heaps_.emplace_back();
  }
  return fresh;
}

void Runtime::kill(PlaceId p) {
  if (p == 0) {
    throw ApgasError(
        "kill(0): place zero is immortal in the paper's failure model");
  }
  if (p < 0 || p >= numPlaces()) throw ApgasError("kill: no such place");
  // Serialise whole kill fanouts: a listener must never observe two
  // concurrent kills interleaving (the snapshot store's replica
  // bookkeeping depends on one-at-a-time notifications).
  std::lock_guard<std::mutex> killLock(killMutex_);
  if (engine_) {
    if (!engine_->kill(p)) return;  // already dead
  } else {
    if (dead_.contains(p)) return;
    dead_.insert(p);
    wipeHeap(p);
    ++stats_.placesKilled;
    if (auto* sink = obs::TraceSink::current()) {
      sink->instant(obs::Category::Kill, "kill", -1, static_cast<int>(p),
                    clocks_[static_cast<std::size_t>(p)], 0,
                    {{"victim", std::to_string(p)}});
      sink->addMetric("runtime.places_killed");
    }
  }
  // Copy under the registration lock: a listener may (un)register other
  // listeners, and foreign threads may be registering concurrently.
  std::unordered_map<std::uint64_t, std::function<void(PlaceId)>> listeners;
  {
    std::lock_guard<std::mutex> lock(listenerMutex_);
    listeners = killListeners_;
  }
  for (auto& [token, fn] : listeners) fn(p);
}

std::uint64_t Runtime::addKillListener(std::function<void(PlaceId)> fn) {
  std::lock_guard<std::mutex> lock(listenerMutex_);
  const std::uint64_t token = nextListener_++;
  killListeners_.emplace(token, std::move(fn));
  return token;
}

void Runtime::removeKillListener(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(listenerMutex_);
  killListeners_.erase(token);
}

double Runtime::chargeBookkeeping(double sendTime) {
  ++stats_.bookkeepingMsgs;
  const double arrival = sendTime + cm_.commTime(kCtrlBytes);
  ctrlClock_ = std::max(ctrlClock_, arrival) + cm_.resilientBookkeeping;
  return ctrlClock_;
}

void Runtime::finish(const std::function<void()>& body) {
  if (engine_) {
    engine_->finish(body);
    return;
  }
  ++stats_.finishes;
  const PlaceId home = hereStack_.back();
  clocks_[home] += cm_.finishSetup;
  finishStack_.push_back(FinishFrame{home, clocks_[home], 0, {}, {}});
  const std::size_t idx = finishStack_.size() - 1;
  if (resilient_) {
    chargeBookkeeping(clocks_[home]);  // finish registration
  }
  try {
    body();
  } catch (...) {
    finishStack_[idx].exceptions.push_back(std::current_exception());
  }
  // Drain same-place tasks: they run now that the spawner has blocked at
  // the finish. A drained task may defer further local tasks.
  while (!finishStack_[idx].deferred.empty()) {
    DeferredTask task = std::move(finishStack_[idx].deferred.front());
    finishStack_[idx].deferred.erase(finishStack_[idx].deferred.begin());
    runTask(idx, task.target, task.spawnTime, task.body);
  }
  FinishFrame frame = std::move(finishStack_[idx]);
  finishStack_.pop_back();

  // The home processes one termination notification per task.
  clocks_[home] = std::max(clocks_[home], frame.maxChildEnd) +
                  static_cast<double>(frame.tasks) * cm_.taskRecvOverhead;
  if (resilient_) {
    // The finish cannot complete until the place-0 control processor has
    // drained every spawn/termination message and acknowledged completion.
    const double before = clocks_[home];
    const double ack = chargeBookkeeping(before);
    const double ackLatency = home == 0 ? 0.0 : cm_.commTime(kEnvelopeBytes);
    clocks_[home] = std::max(clocks_[home], ack + ackLatency);
    if (auto* sink = obs::TraceSink::current()) {
      // The ack wait is the critical-path cost of resilient finish — the
      // quantity Figs. 2-4 and Table IV's bookkeeping column measure.
      const double blocked = clocks_[home] - before;
      sink->addMetric("finish.count");
      static const std::vector<double> kAckBuckets{1e-6, 1e-5, 1e-4, 1e-3,
                                                   1e-2, 0.1,  1.0};
      sink->observeMetric("finish.ack_wait_seconds", kAckBuckets, blocked);
      if (blocked > 0.0) {
        sink->span(obs::Category::Finish, "finish.ack", -1,
                   static_cast<int>(home), before, clocks_[home], 0,
                   {{"tasks", std::to_string(frame.tasks)}});
      }
    }
  }
  throwCollected(frame);
}

void Runtime::throwCollected(FinishFrame& frame) {
  if (frame.exceptions.empty()) return;
  if (frame.exceptions.size() == 1) {
    std::rethrow_exception(frame.exceptions.front());
  }
  throw MultipleExceptions(std::move(frame.exceptions));
}

void Runtime::asyncAt(Place p, const std::function<void()>& body) {
  if (engine_) {
    engine_->asyncAt(p, body);
    return;
  }
  if (finishStack_.empty()) {
    throw ApgasError("asyncAt outside any finish scope");
  }
  noteDispatch();

  ++stats_.asyncsSpawned;
  const PlaceId spawner = hereStack_.back();
  const PlaceId target = p.id();
  if (target < 0 || target >= numPlaces()) {
    throw ApgasError("asyncAt: no such place");
  }
  // The spawner pays the local spawn bookkeeping plus, for a remote task,
  // the serialisation/push cost — so a flat fan-out over P places costs
  // the home O(P), as on the real socket transport.
  clocks_[spawner] += cm_.asyncSpawn;
  if (target != spawner) clocks_[spawner] += cm_.taskSendOverhead;
  const double spawnTime = clocks_[spawner];
  const std::size_t idx = finishStack_.size() - 1;
  ++finishStack_[idx].tasks;

  if (resilient_) {
    chargeBookkeeping(spawnTime);
  }

  if (target == spawner) {
    // Same-place task: with one worker per place it cannot run until the
    // spawner blocks; defer to the enclosing finish boundary.
    finishStack_[idx].deferred.push_back(
        DeferredTask{target, spawnTime, body});
    return;
  }

  runTask(idx, target, spawnTime + cm_.commTime(kEnvelopeBytes), body);
}

void Runtime::runTask(std::size_t idx, PlaceId target, double spawnTime,
                      const std::function<void()>& body) {
  if (isDead(target)) {
    finishStack_[idx].exceptions.push_back(
        std::make_exception_ptr(DeadPlaceException(target)));
    return;
  }

  clocks_[target] = std::max(clocks_[target], spawnTime);

  hereStack_.push_back(target);
  try {
    body();
  } catch (...) {
    finishStack_[idx].exceptions.push_back(std::current_exception());
  }
  hereStack_.pop_back();

  if (isDead(target)) {
    // The place died while (conceptually) running this task: its effects
    // are gone (kill() cleared the heap) and the finish must observe the
    // failure.
    finishStack_[idx].exceptions.push_back(
        std::make_exception_ptr(DeadPlaceException(target)));
    return;
  }

  const double taskEnd = clocks_[target];
  const PlaceId home = finishStack_[idx].home;
  const double notify = target == home ? 0.0 : cm_.commTime(kEnvelopeBytes);
  finishStack_[idx].maxChildEnd =
      std::max(finishStack_[idx].maxChildEnd, taskEnd + notify);
  if (resilient_) {
    chargeBookkeeping(taskEnd);
  }
}

void Runtime::at(Place p, const std::function<void()>& body) {
  if (engine_) {
    engine_->at(p, body);
    return;
  }
  const PlaceId target = p.id();
  if (target < 0 || target >= numPlaces()) {
    throw ApgasError("at: no such place");
  }
  if (isDead(target)) throw DeadPlaceException(target);

  const PlaceId origin = hereStack_.back();
  if (target != origin) {
    clocks_[target] = std::max(
        clocks_[target], clocks_[origin] + cm_.commTime(kEnvelopeBytes));
  }
  hereStack_.push_back(target);
  struct PopGuard {
    std::vector<PlaceId>& stack;
    ~PopGuard() { stack.pop_back(); }
  } guard{hereStack_};
  body();
  // `guard` pops on scope exit (also on exception propagation).
  if (isDead(target)) throw DeadPlaceException(target);
  if (target != origin) {
    clocks_[origin] = std::max(
        clocks_[origin], clocks_[target] + cm_.commTime(kEnvelopeBytes));
  }
}

void Runtime::chargeDenseFlops(double flops) {
  if (engine_) return;  // wall time: compute costs itself
  const PlaceId p = hereStack_.back();
  if (isDead(p)) return;
  clocks_[p] += cm_.denseComputeTime(flops);
}

void Runtime::chargeSparseFlops(double flops) {
  if (engine_) return;
  const PlaceId p = hereStack_.back();
  if (isDead(p)) return;
  clocks_[p] += cm_.sparseComputeTime(flops);
}

void Runtime::chargeLocalCopy(std::uint64_t bytes) {
  if (engine_) return;
  const PlaceId p = hereStack_.back();
  if (isDead(p)) return;
  clocks_[p] += cm_.copyTime(bytes);
}

void Runtime::chargeSerialization(std::uint64_t bytes) {
  if (engine_) return;
  const PlaceId p = hereStack_.back();
  if (isDead(p)) return;
  clocks_[p] += cm_.serializeTime(bytes);
}

void Runtime::chargeComm(Place to, std::uint64_t bytes) {
  if (engine_) {
    engine_->chargeComm(to, bytes);
    return;
  }
  const PlaceId from = hereStack_.back();
  if (isDead(from)) return;
  if (to.id() == from) {
    chargeLocalCopy(bytes);
    return;
  }
  ++stats_.dataMsgs;
  stats_.bytesSent += bytes;
  // One-sided semantics: the initiating place pays the full transfer; the
  // peer's worker does not stall (its runtime buffers the data). Ordering
  // across places is established by the enclosing finish, whose completion
  // already dominates every sender's clock.
  const double start = clocks_[from];
  clocks_[from] += cm_.commTime(bytes);
  if (auto* sink = obs::TraceSink::current()) {
    sink->span(obs::Category::Comms, "comm", -1, static_cast<int>(from),
               start, clocks_[from], bytes,
               {{"to", std::to_string(to.id())}});
    sink->addMetric("comms.data_msgs");
    sink->addMetric("comms.bytes_sent", bytes);
  }
}

void Runtime::noteDataTransfer(std::uint64_t bytes) {
  if (engine_) {
    engine_->noteDataTransfer(bytes);
    return;
  }
  ++stats_.dataMsgs;
  stats_.bytesSent += bytes;
  if (auto* sink = obs::TraceSink::current()) {
    // Collective payloads whose critical-path time is modelled elsewhere
    // (tree broadcast): account the bytes at the current place's clock
    // without a duration.
    sink->instant(obs::Category::Comms, "data-transfer", -1,
                  static_cast<int>(hereStack_.back()),
                  clocks_[static_cast<std::size_t>(hereStack_.back())],
                  bytes);
    sink->addMetric("comms.data_msgs");
    sink->addMetric("comms.bytes_sent", bytes);
  }
}

void Runtime::advance(double seconds) {
  if (engine_) return;  // wall time advances itself
  const PlaceId p = hereStack_.back();
  if (isDead(p)) return;
  clocks_[p] += seconds;
}

RuntimeStats Runtime::stats() const noexcept {
  // Returned by value: foreign threads may call this concurrently (see the
  // threading contract in runtime.h), so the engine snapshot must not pass
  // through shared mutable state.
  if (engine_) {
    RuntimeStats snap;
    engine_->snapshotStats(snap);
    return snap;
  }
  return stats_;
}

void Runtime::resetStats() {
  stats_ = RuntimeStats{};
  if (engine_) engine_->resetStats();
}

void Runtime::wipeHeap(PlaceId p) {
  std::lock_guard<std::mutex> lock(heapMutex_);
  if (p < 0 || static_cast<std::size_t>(p) >= heaps_.size()) return;
  heaps_[static_cast<std::size_t>(p)].clear();
}

void Runtime::heapPut(PlaceId p, std::uint64_t key,
                      std::shared_ptr<void> obj) {
  if (p < 0 || p >= numPlaces()) throw ApgasError("heapPut: no such place");
  std::lock_guard<std::mutex> lock(heapMutex_);
  // Dead check under heapMutex_: kill() flips the dead flag *before*
  // wipeHeap() takes this mutex, so a put that locks after the wipe sees
  // dead and drops, and one that locks before it is wiped with the rest —
  // either way no live data survives on a dead place's heap.
  if (isDead(p)) return;  // writes to a dead place are lost
  heaps_[static_cast<std::size_t>(p)][key] = std::move(obj);
}

std::shared_ptr<void> Runtime::heapGet(PlaceId p, std::uint64_t key) const {
  if (p < 0 || p >= numPlaces()) throw ApgasError("heapGet: no such place");
  std::lock_guard<std::mutex> lock(heapMutex_);
  const auto& heap = heaps_[static_cast<std::size_t>(p)];
  auto it = heap.find(key);
  return it == heap.end() ? nullptr : it->second;
}

void Runtime::heapErase(PlaceId p, std::uint64_t key) {
  if (p < 0 || p >= numPlaces()) return;
  std::lock_guard<std::mutex> lock(heapMutex_);
  heaps_[static_cast<std::size_t>(p)].erase(key);
}

void Runtime::heapEraseAll(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(heapMutex_);
  for (auto& heap : heaps_) heap.erase(key);
}

}  // namespace rgml::apgas
