// Tests for the serialisation layer: binary round-trips (all la types and
// all SnapshotValue subtypes), corruption detection, and the text formats
// (MatrixMarket, CSV).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "la/rand.h"
#include "resilient/restore_overlap.h"
#include "resilient/value_serde.h"
#include "serialize/binary_io.h"
#include "serialize/matrix_io.h"

namespace rgml::serialize {
namespace {

TEST(BinaryIoTest, VectorRoundTrip) {
  la::Vector v = la::makeUniformVector(37, 1);
  std::stringstream buffer;
  write(buffer, v);
  EXPECT_EQ(buffer.str().size(), serializedBytes(v));
  EXPECT_EQ(readVector(buffer), v);
}

TEST(BinaryIoTest, EmptyVectorRoundTrip) {
  la::Vector v(0);
  std::stringstream buffer;
  write(buffer, v);
  EXPECT_EQ(readVector(buffer).size(), 0);
}

TEST(BinaryIoTest, DenseMatrixRoundTrip) {
  la::DenseMatrix m = la::makeUniformDense(11, 7, 2);
  std::stringstream buffer;
  write(buffer, m);
  EXPECT_EQ(buffer.str().size(), serializedBytes(m));
  EXPECT_EQ(readDenseMatrix(buffer), m);
}

TEST(BinaryIoTest, SparseRoundTrip) {
  la::SparseCSR m = la::makeUniformSparse(23, 31, 4, 3);
  std::stringstream buffer;
  write(buffer, m);
  EXPECT_EQ(buffer.str().size(), serializedBytes(m));
  EXPECT_EQ(readSparseCSR(buffer), m);
}

TEST(BinaryIoTest, SequentialValuesInOneStream) {
  la::Vector v = la::makeUniformVector(5, 4);
  la::SparseCSR s = la::makeUniformSparse(6, 6, 2, 5);
  std::stringstream buffer;
  write(buffer, v);
  write(buffer, s);
  EXPECT_EQ(peekTag(buffer), 1u);
  EXPECT_EQ(readVector(buffer), v);
  EXPECT_EQ(peekTag(buffer), 3u);
  EXPECT_EQ(readSparseCSR(buffer), s);
}

TEST(BinaryIoTest, WrongTagDetected) {
  la::Vector v = la::makeUniformVector(5, 6);
  std::stringstream buffer;
  write(buffer, v);
  EXPECT_THROW(static_cast<void>(readDenseMatrix(buffer)), SerializeError);
}

TEST(BinaryIoTest, TruncationDetected) {
  la::DenseMatrix m = la::makeUniformDense(10, 10, 7);
  std::stringstream buffer;
  write(buffer, m);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW(static_cast<void>(readDenseMatrix(truncated)),
               SerializeError);
}

TEST(BinaryIoTest, CorruptSparseStructureDetected) {
  la::SparseCSR m = la::makeUniformSparse(4, 4, 2, 8);
  std::stringstream buffer;
  write(buffer, m);
  std::string bytes = buffer.str();
  // Corrupt a column index deep in the payload to an out-of-range value.
  const std::size_t colIdxStart = sizeof(std::uint32_t) +
                                  3 * sizeof(std::int64_t) +
                                  (4 + 1) * sizeof(long);
  long bad = 1000;
  std::memcpy(bytes.data() + colIdxStart, &bad, sizeof(bad));
  std::stringstream corrupted(bytes);
  EXPECT_THROW(static_cast<void>(readSparseCSR(corrupted)), SerializeError);
}

// ---- SnapshotValue serde ----------------------------------------------------

TEST(ValueSerdeTest, VectorValueRoundTrip) {
  resilient::VectorValue value(la::makeUniformVector(9, 10), 42);
  std::stringstream buffer;
  resilient::writeSnapshotValue(buffer, value);
  auto back = std::dynamic_pointer_cast<const resilient::VectorValue>(
      resilient::readSnapshotValue(buffer));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->offset(), 42);
  EXPECT_EQ(back->data(), value.data());
}

TEST(ValueSerdeTest, DenseBlockRoundTrip) {
  resilient::DenseBlockValue value(la::makeUniformDense(5, 4, 11), 2, 3, 10,
                                   12);
  std::stringstream buffer;
  resilient::writeSnapshotValue(buffer, value);
  auto back = std::dynamic_pointer_cast<const resilient::DenseBlockValue>(
      resilient::readSnapshotValue(buffer));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->blockRow(), 2);
  EXPECT_EQ(back->blockCol(), 3);
  EXPECT_EQ(back->rowOffset(), 10);
  EXPECT_EQ(back->colOffset(), 12);
  EXPECT_EQ(back->data(), value.data());
}

TEST(ValueSerdeTest, SparseBlockRoundTrip) {
  resilient::SparseBlockValue value(la::makeUniformSparse(8, 8, 2, 12), 1, 0,
                                    8, 0);
  std::stringstream buffer;
  resilient::writeSnapshotValue(buffer, value);
  auto back = std::dynamic_pointer_cast<const resilient::SparseBlockValue>(
      resilient::readSnapshotValue(buffer));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->blockRow(), 1);
  EXPECT_EQ(back->data(), value.data());
}

TEST(ValueSerdeTest, ScalarsAndGridMetaRoundTrip) {
  resilient::ScalarsValue scalars({1.5, -2.5, 3.25});
  std::stringstream b1;
  resilient::writeSnapshotValue(b1, scalars);
  auto backScalars = std::dynamic_pointer_cast<const resilient::ScalarsValue>(
      resilient::readSnapshotValue(b1));
  ASSERT_NE(backScalars, nullptr);
  EXPECT_EQ(backScalars->scalars(), scalars.scalars());

  resilient::GridMetaValue grid(la::Grid(100, 50, 8, 2));
  std::stringstream b2;
  resilient::writeSnapshotValue(b2, grid);
  auto backGrid = std::dynamic_pointer_cast<const resilient::GridMetaValue>(
      resilient::readSnapshotValue(b2));
  ASSERT_NE(backGrid, nullptr);
  EXPECT_TRUE(backGrid->grid() == grid.grid());
}

// ---- text formats ------------------------------------------------------------

TEST(MatrixMarketTest, RoundTrip) {
  la::SparseCSR m = la::makeUniformSparse(12, 9, 3, 13);
  std::stringstream buffer;
  writeMatrixMarket(buffer, m);
  EXPECT_EQ(readMatrixMarket(buffer), m);
}

TEST(MatrixMarketTest, AcceptsCommentsAndUnsortedEntries) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 3\n"
      "3 1 30\n"
      "1 1 10\n"
      "2 2 20\n");
  la::SparseCSR m = readMatrixMarket(in);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.at(0, 0), 10.0);
  EXPECT_EQ(m.at(1, 1), 20.0);
  EXPECT_EQ(m.at(2, 0), 30.0);
}

TEST(MatrixMarketTest, RejectsMalformedInput) {
  std::stringstream noHeader("3 3 1\n1 1 5\n");
  EXPECT_THROW(static_cast<void>(readMatrixMarket(noHeader)),
               SerializeError);
  std::stringstream outOfRange(
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 5\n");
  EXPECT_THROW(static_cast<void>(readMatrixMarket(outOfRange)),
               SerializeError);
  std::stringstream duplicate(
      "%%MatrixMarket matrix coordinate real general\n3 3 2\n"
      "1 1 5\n1 1 6\n");
  EXPECT_THROW(static_cast<void>(readMatrixMarket(duplicate)),
               SerializeError);
}

TEST(CsvTest, RoundTrip) {
  la::DenseMatrix m = la::makeUniformDense(6, 4, 14);
  std::stringstream buffer;
  writeCsv(buffer, m);
  EXPECT_EQ(readCsv(buffer), m);
}

TEST(CsvTest, RejectsRaggedRows) {
  std::stringstream in("1,2,3\n4,5\n");
  EXPECT_THROW(static_cast<void>(readCsv(in)), SerializeError);
}

TEST(CsvTest, RejectsNonNumericCells) {
  std::stringstream in("1,two,3\n");
  EXPECT_THROW(static_cast<void>(readCsv(in)), SerializeError);
}

}  // namespace
}  // namespace rgml::serialize
