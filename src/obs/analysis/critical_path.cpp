#include "obs/analysis/critical_path.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "obs/analysis/attribution.h"

namespace rgml::obs::analysis {

namespace {

/// Best-dp-at-or-before-time lookup. Entries are appended in
/// nondecreasing time with strictly increasing dp (worse candidates are
/// dropped at insert), so a query is one binary search.
class BestByTime {
 public:
  void insert(double time, double dp, std::size_t idx) {
    if (!entries_.empty() && dp <= entries_.back().dp) return;
    if (!entries_.empty() && entries_.back().time == time) {
      entries_.back() = {time, dp, idx};
      return;
    }
    entries_.push_back({time, dp, idx});
  }

  /// The entry with the greatest dp among time <= t; false when none.
  [[nodiscard]] bool query(double t, double& dp, std::size_t& idx) const {
    const auto it = std::upper_bound(
        entries_.begin(), entries_.end(), t,
        [](double value, const Entry& e) { return value < e.time; });
    if (it == entries_.begin()) return false;
    dp = std::prev(it)->dp;
    idx = std::prev(it)->idx;
    return true;
  }

 private:
  struct Entry {
    double time;
    double dp;
    std::size_t idx;
  };
  std::vector<Entry> entries_;
};

/// The target place of a comms span, or -1 when it has none (local
/// transfers record no "to").
int commTargetOf(const Span& s) {
  if (s.category != Category::Comms) return -1;
  const std::string to = s.arg("to");
  if (to.empty()) return -1;
  return std::atoi(to.c_str());
}

}  // namespace

CriticalPath extractCriticalPath(const std::vector<Span>& spans,
                                 std::size_t topK) {
  CriticalPath result;
  if (spans.empty()) return result;

  const std::size_t n = spans.size();
  std::vector<std::size_t> byStart(n);
  std::vector<std::size_t> byEnd(n);
  for (std::size_t i = 0; i < n; ++i) byStart[i] = byEnd[i] = i;
  std::sort(byStart.begin(), byStart.end(),
            [&](std::size_t a, std::size_t b) {
              if (spans[a].startTime != spans[b].startTime) {
                return spans[a].startTime < spans[b].startTime;
              }
              return a < b;
            });
  std::sort(byEnd.begin(), byEnd.end(), [&](std::size_t a, std::size_t b) {
    if (spans[a].endTime != spans[b].endTime) {
      return spans[a].endTime < spans[b].endTime;
    }
    return a < b;
  });

  std::map<int, BestByTime> seqBest;  // same-place predecessor chains
  std::map<int, BestByTime> inBest;   // incoming comms per target place
  std::vector<double> dp(n, 0.0);
  std::vector<std::ptrdiff_t> pred(n, -1);
  std::vector<char> processed(n, 0);

  std::size_t finalized = 0;
  for (const std::size_t i : byStart) {
    const Span& s = spans[i];
    // Finalize every span that ended before this one starts. A span
    // ending exactly at s.startTime finalizes only if its own dp is
    // already computed; the blocked case is a zero-duration span at this
    // very timestamp that start-order has not reached yet — skipping it
    // loses only a zero-weight link.
    while (finalized < n) {
      const std::size_t j = byEnd[finalized];
      const Span& e = spans[j];
      if (e.endTime > s.startTime) break;
      if (e.endTime == s.startTime && !processed[j]) break;
      seqBest[e.place].insert(e.endTime, dp[j], j);
      const int target = commTargetOf(e);
      if (target >= 0) inBest[target].insert(e.endTime, dp[j], j);
      ++finalized;
    }

    double bestDp = 0.0;
    std::ptrdiff_t bestIdx = -1;
    double candDp = 0.0;
    std::size_t candIdx = 0;
    const auto seq = seqBest.find(s.place);
    if (seq != seqBest.end() &&
        seq->second.query(s.startTime, candDp, candIdx) &&
        candDp > bestDp) {
      bestDp = candDp;
      bestIdx = static_cast<std::ptrdiff_t>(candIdx);
    }
    const auto in = inBest.find(s.place);
    if (in != inBest.end() &&
        in->second.query(s.startTime, candDp, candIdx) &&
        candDp > bestDp) {
      bestDp = candDp;
      bestIdx = static_cast<std::ptrdiff_t>(candIdx);
    }
    dp[i] = bestDp + std::max(0.0, s.duration());
    pred[i] = bestIdx;
    processed[i] = 1;
  }

  std::size_t tail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (dp[i] > dp[tail]) tail = i;
    result.makespanSeconds =
        std::max(result.makespanSeconds, spans[i].endTime);
  }
  result.lengthSeconds = dp[tail];

  // Walk the predecessor chain back, then reverse into time order.
  std::vector<std::size_t> chain;
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(tail); i >= 0;
       i = pred[static_cast<std::size_t>(i)]) {
    chain.push_back(static_cast<std::size_t>(i));
  }
  std::reverse(chain.begin(), chain.end());
  for (const std::size_t i : chain) {
    const Span& s = spans[i];
    CriticalPathEntry e;
    e.spanIndex = i;
    e.category = toString(s.category);
    e.name = s.name;
    e.phase = phaseKeyOf(s);
    e.place = s.place;
    e.iteration = s.iteration;
    e.startTime = s.startTime;
    e.endTime = s.endTime;
    result.entries.push_back(std::move(e));
  }

  std::map<std::string, CriticalPathCategory> byCategory;
  for (const CriticalPathEntry& e : result.entries) {
    CriticalPathCategory& c = byCategory[e.category];
    c.key = e.category;
    c.seconds += e.duration();
    c.spans += 1;
    c.top.push_back(e);
  }
  for (auto& [key, c] : byCategory) {
    c.pct = result.lengthSeconds > 0.0
                ? c.seconds / result.lengthSeconds * 100.0
                : 0.0;
    std::stable_sort(c.top.begin(), c.top.end(),
                     [](const CriticalPathEntry& a,
                        const CriticalPathEntry& b) {
                       return a.duration() > b.duration();
                     });
    if (c.top.size() > topK) c.top.resize(topK);
    result.byCategory.push_back(std::move(c));
  }
  std::sort(result.byCategory.begin(), result.byCategory.end(),
            [](const CriticalPathCategory& a,
               const CriticalPathCategory& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.key < b.key;
            });
  return result;
}

}  // namespace rgml::obs::analysis
