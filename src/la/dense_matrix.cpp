#include "la/dense_matrix.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace rgml::la {

DenseMatrix::DenseMatrix(long m, long n)
    : m_(m), n_(n), data_(static_cast<std::size_t>(m * n), 0.0) {
  if (m < 0 || n < 0) throw std::invalid_argument("DenseMatrix: negative dim");
}

DenseMatrix::DenseMatrix(long m, long n, std::vector<double> data)
    : m_(m), n_(n), data_(std::move(data)) {
  if (static_cast<long>(data_.size()) != m * n) {
    throw std::invalid_argument("DenseMatrix: data size != m*n");
  }
}

void DenseMatrix::copySubFrom(const DenseMatrix& src, long r0, long c0,
                              long h, long w, long dr, long dc) {
  assert(r0 >= 0 && c0 >= 0 && r0 + h <= src.m_ && c0 + w <= src.n_);
  assert(dr >= 0 && dc >= 0 && dr + h <= m_ && dc + w <= n_);
  for (long j = 0; j < w; ++j) {
    const double* s = src.data_.data() + (c0 + j) * src.m_ + r0;
    double* d = data_.data() + (dc + j) * m_ + dr;
    std::memcpy(d, s, static_cast<std::size_t>(h) * sizeof(double));
  }
}

DenseMatrix DenseMatrix::subMatrix(long r0, long c0, long h, long w) const {
  DenseMatrix out(h, w);
  out.copySubFrom(*this, r0, c0, h, w, 0, 0);
  return out;
}

}  // namespace rgml::la
