// MatrixBlock: one block of a distributed block matrix, dense or sparse
// (x10.matrix.block.MatrixBlock / DenseBlock / SparseBlock).
//
// Every block carries a monotone version stamp used by the delta
// checkpoint path: a snapshot records the version it saved, and a later
// snapshot carries the saved copy forward unchanged when the versions
// still match. The stamp is bumped pessimistically by *any* mutable
// payload access — a spurious bump only costs checkpoint bytes, while a
// missed one would silently restore stale data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <variant>

#include "la/dense_matrix.h"
#include "la/sparse_csr.h"

namespace rgml::la {

class MatrixBlock {
 public:
  MatrixBlock() = default;
  MatrixBlock(long rb, long cb, long rowOffset, long colOffset,
              DenseMatrix payload);
  MatrixBlock(long rb, long cb, long rowOffset, long colOffset,
              SparseCSR payload);

  /// Block coordinates within the owning Grid.
  [[nodiscard]] long blockRow() const noexcept { return rb_; }
  [[nodiscard]] long blockCol() const noexcept { return cb_; }
  /// Global offsets of this block's (0,0) element.
  [[nodiscard]] long rowOffset() const noexcept { return rowOffset_; }
  [[nodiscard]] long colOffset() const noexcept { return colOffset_; }

  [[nodiscard]] long rows() const;
  [[nodiscard]] long cols() const;

  [[nodiscard]] bool isSparse() const noexcept {
    return std::holds_alternative<SparseCSR>(payload_);
  }

  /// Mutable payload access bumps the version: the caller may write.
  [[nodiscard]] DenseMatrix& dense() {
    bumpVersion();
    return std::get<DenseMatrix>(payload_);
  }
  [[nodiscard]] const DenseMatrix& dense() const {
    return std::get<DenseMatrix>(payload_);
  }
  [[nodiscard]] SparseCSR& sparse() {
    bumpVersion();
    return std::get<SparseCSR>(payload_);
  }
  [[nodiscard]] const SparseCSR& sparse() const {
    return std::get<SparseCSR>(payload_);
  }

  /// Monotone modification stamp (0 for a freshly allocated block).
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  void bumpVersion() noexcept { ++version_; }
  /// Re-stamp after a restore so the block matches the snapshot entry it
  /// was rebuilt from (content and version correspond again).
  void setVersion(std::uint64_t v) noexcept { version_ = v; }

  /// Payload bytes (snapshot / communication accounting).
  [[nodiscard]] std::size_t bytes() const;

  /// Flops of one mat-vec with this block (2*elements dense, 2*nnz sparse).
  [[nodiscard]] double multFlops() const;

  /// y += B * x, where x spans this block's global column range and y spans
  /// its global row range.
  void multAdd(std::span<const double> x, std::span<double> y) const;

  /// y += B^T * x, where x spans the row range and y the column range.
  void transMultAdd(std::span<const double> x, std::span<double> y) const;

  /// Global element read (tests / verification).
  [[nodiscard]] double at(long localRow, long localCol) const;

 private:
  long rb_ = 0;
  long cb_ = 0;
  long rowOffset_ = 0;
  long colOffset_ = 0;
  std::uint64_t version_ = 0;
  std::variant<DenseMatrix, SparseCSR> payload_;
};

}  // namespace rgml::la
