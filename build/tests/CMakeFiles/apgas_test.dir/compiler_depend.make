# Empty compiler generated dependencies file for apgas_test.
# This may be replaced when dependencies are built.
