#include "apgas/fault_injector.h"

#include <algorithm>
#include <memory>

#include "apgas/runtime.h"

namespace rgml::apgas {

void FaultInjector::killNow(PlaceId p) { Runtime::world().kill(p); }

void FaultInjector::killAtDispatch(long n, PlaceId victim) {
  if (n < 1) throw ApgasError("killAtDispatch: n must be >= 1");
  Runtime& rt = Runtime::world();
  // Count dispatches from now; fire once, then self-disarm. State lives in
  // a shared_ptr because the runtime invokes a *copy* of the hook.
  auto remaining = std::make_shared<long>(n);
  rt.setDispatchHook([&rt, remaining, victim](long) {
    if (*remaining > 0 && --*remaining == 0) {
      rt.setDispatchHook({});
      rt.kill(victim);
    }
  });
  dispatchHookInstalled_ = true;
}

void FaultInjector::killOnIteration(long iter, PlaceId victim) {
  iterKills_.push_back(IterKill{iter, victim});
}

std::vector<PlaceId> FaultInjector::onIterationCompleted(long iter) {
  std::vector<PlaceId> victims;
  auto it = iterKills_.begin();
  while (it != iterKills_.end()) {
    if (it->iter == iter) {
      victims.push_back(it->victim);
      it = iterKills_.erase(it);
    } else {
      ++it;
    }
  }
  Runtime& rt = Runtime::world();
  for (PlaceId v : victims) rt.kill(v);
  return victims;
}

void FaultInjector::reset() {
  iterKills_.clear();
  if (dispatchHookInstalled_ && Runtime::initialized()) {
    Runtime::world().setDispatchHook({});
  }
  dispatchHookInstalled_ = false;
}

}  // namespace rgml::apgas
