#include "framework/trace.h"

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>

namespace rgml::framework {

const char* toString(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::Step:
      return "step";
    case TraceEvent::Kind::Checkpoint:
      return "checkpoint";
    case TraceEvent::Kind::Failure:
      return "failure";
    case TraceEvent::Kind::Restore:
      return "restore";
  }
  return "?";
}

std::vector<TraceEvent> ExecutionTrace::ofKind(TraceEvent::Kind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

double ExecutionTrace::totalTime(TraceEvent::Kind kind) const {
  double total = 0.0;
  for (const auto& e : events_) {
    if (e.kind == kind) total += e.duration();
  }
  return total;
}

std::string ExecutionTrace::timeline() const {
  std::string out;
  char line[160];
  // snprintf returns the *would-be* length when the buffer is too small
  // (extreme simulated times / iteration counts); appending that many
  // bytes from `line` would read past the buffer. Re-format oversized
  // lines into an exactly-sized heap buffer instead of truncating.
  auto append = [&](const char* fmt, auto... args) {
    const int written = std::snprintf(line, sizeof(line), fmt, args...);
    if (written < 0) return;
    if (static_cast<std::size_t>(written) < sizeof(line)) {
      out.append(line, static_cast<std::size_t>(written));
    } else {
      std::string big(static_cast<std::size_t>(written) + 1, '\0');
      std::snprintf(big.data(), big.size(), fmt, args...);
      out.append(big.data(), static_cast<std::size_t>(written));
    }
  };
  for (const auto& e : events_) {
    switch (e.kind) {
      case TraceEvent::Kind::Failure:
        append("[%9.3fs .. %9.3fs] %-10s iter %-4ld place %d\n",
               e.startTime, e.endTime, toString(e.kind), e.iteration,
               e.victim);
        break;
      case TraceEvent::Kind::Restore:
        append("[%9.3fs .. %9.3fs] %-10s iter %-4ld mode %s place %d\n",
               e.startTime, e.endTime, toString(e.kind), e.iteration,
               toString(e.mode), e.victim);
        break;
      default:
        append("[%9.3fs .. %9.3fs] %-10s iter %ld\n", e.startTime,
               e.endTime, toString(e.kind), e.iteration);
        break;
    }
  }
  return out;
}

std::string ExecutionTrace::toJson() const {
  std::ostringstream os;
  os << std::setprecision(12);
  os << "{\"events\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    os << (i ? ", " : "") << "{\"kind\": \"" << toString(e.kind)
       << "\", \"iteration\": " << e.iteration << ", \"start\": "
       << e.startTime << ", \"end\": " << e.endTime;
    if (e.kind == TraceEvent::Kind::Failure ||
        e.kind == TraceEvent::Kind::Restore) {
      os << ", \"victim\": " << e.victim;
    }
    if (e.kind == TraceEvent::Kind::Restore) {
      os << ", \"mode\": \"" << toString(e.mode) << '"';
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace rgml::framework
