// AppResilientStore: consistent application-level checkpoints
// (paper §V-A1, Listing 4).
//
// An application snapshot bundles the Snapshots of every GML object that
// contributes to the application's state, plus the iteration number it was
// taken at. Snapshots are created atomically: a new snapshot only becomes
// the restore target after commit(); a failure mid-checkpoint is handled by
// cancelSnapshot(), which discards the partial snapshot and leaves the
// previous committed one intact. Coordinated checkpointing needs only the
// latest committed snapshot, so at most two slots exist at any time (the
// committed one and the in-progress one).
//
// saveReadOnly() implements the paper's optimisation for objects that never
// change (e.g. the training matrix): their Snapshot from the previous
// committed application snapshot is reused instead of re-created, which is
// why Table III's checkpoint times only pay for the mutable state.
//
// The delta-checkpoint mode (default) generalises saveReadOnly to
// per-block granularity: save() asks the object for a delta snapshot
// against its Snapshot in the last committed application snapshot, so
// objects with version-stamped blocks copy and re-back-up only the blocks
// that changed since then; unchanged blocks are carried forward at zero
// cost. commit() promotes the resulting fresh/carried mix atomically, and
// cancelSnapshot() discards the whole in-progress mix — carried entries
// are copies, so the committed snapshot they came from is untouched.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "resilient/lossy_codec.h"
#include "resilient/snapshot.h"

namespace rgml::obs {
class TraceSink;
}

namespace rgml::resilient {

/// What save()/saveReadOnly() ship per checkpoint.
enum class CheckpointMode {
  Full,           ///< everything re-copied every checkpoint (baseline)
  ReadOnlyReuse,  ///< the paper's model: only saveReadOnly() skips work
  Delta,          ///< per-block version deltas; saveReadOnly() still reuses
  Lossy,          ///< full saves through the quantizing/compressing codec
  DeltaLossy,     ///< delta carry-forward; fresh entries go through the codec
};

/// Modes that carry unchanged entries forward instead of re-saving them.
[[nodiscard]] constexpr bool usesDelta(CheckpointMode mode) noexcept {
  return mode == CheckpointMode::Delta || mode == CheckpointMode::DeltaLossy;
}

/// Modes that run fresh saves through the lossy/compressed codec.
[[nodiscard]] constexpr bool usesLossy(CheckpointMode mode) noexcept {
  return mode == CheckpointMode::Lossy || mode == CheckpointMode::DeltaLossy;
}

[[nodiscard]] const char* toString(CheckpointMode mode) noexcept;

class AppResilientStore {
 public:
  /// Record the iteration the next snapshot will belong to. Called by the
  /// resilient executor before invoking the application's checkpoint();
  /// keeps the paper's zero-argument startNewSnapshot() signature.
  void setIteration(long iteration) noexcept { iteration_ = iteration; }

  /// Checkpoint mode for subsequent save()/saveReadOnly() calls.
  void setMode(CheckpointMode mode) noexcept { mode_ = mode; }
  [[nodiscard]] CheckpointMode mode() const noexcept { return mode_; }

  /// Codec knobs for the lossy modes (errorBound <= 0 = lossless
  /// compression only). Ignored unless usesLossy(mode()).
  void setLossyConfig(const LossyConfig& cfg) noexcept { lossy_ = cfg; }
  [[nodiscard]] const LossyConfig& lossyConfig() const noexcept {
    return lossy_;
  }

  /// Replication factor k for subsequent save()/saveReadOnly() calls:
  /// every Snapshot the store asks an object to create keeps k copies of
  /// each entry on k distinct places (clamped to the object's group
  /// size). Default 2 — the paper's double in-memory storage.
  void setReplication(int k);
  [[nodiscard]] int replication() const noexcept { return replication_; }

  /// Begin a new application snapshot (for the iteration last given to
  /// setIteration). Throws if a snapshot is already in progress.
  void startNewSnapshot();

  /// Snapshot `obj` into the in-progress application snapshot.
  void save(Snapshottable& obj);

  /// Snapshot `obj`, reusing its Snapshot from the latest committed
  /// application snapshot if one exists (read-only objects are saved only
  /// once, at the first checkpoint).
  void saveReadOnly(Snapshottable& obj);

  /// Atomically promote the in-progress snapshot to "latest committed" and
  /// discard the previous one.
  void commit();

  /// Discard the in-progress snapshot (failure during checkpoint).
  void cancelSnapshot();

  /// Restore every object of the latest committed snapshot by calling its
  /// restoreSnapshot(). Objects must have been remake()-d over the new
  /// place group by the caller first (paper Listing 5, lines 9-14).
  void restore();

  /// Restore ONE object from the latest committed snapshot, leaving the
  /// others untouched. Algorithm-based recovery uses this to reload only
  /// the read-only inputs (A, b) while the live iterate is reconstructed
  /// from the recurrence. Throws if `obj` is not in the snapshot.
  void restoreOnly(Snapshottable& obj);

  [[nodiscard]] bool hasCommitted() const noexcept {
    return committed_ != nullptr;
  }
  [[nodiscard]] bool inProgress() const noexcept {
    return inProgress_ != nullptr;
  }

  /// Iteration of the latest committed snapshot; -1 if none.
  [[nodiscard]] long latestCommittedIteration() const noexcept {
    return committed_ ? committed_->iteration : -1;
  }

  /// Number of objects in the latest committed snapshot (0 if none).
  [[nodiscard]] std::size_t committedObjectCount() const noexcept {
    return committed_ ? committed_->objects.size() : 0;
  }

  /// Total payload bytes of the latest committed snapshot.
  [[nodiscard]] std::size_t committedBytes() const;

  /// Per-checkpoint accounting: what the last committed checkpoint
  /// actually copied (fresh) vs. reused (carried-forward delta entries
  /// plus whole Snapshots reused by saveReadOnly).
  struct CheckpointStats {
    std::uint64_t freshBytes = 0;
    std::uint64_t carriedBytes = 0;
    std::size_t freshEntries = 0;
    std::size_t carriedEntries = 0;
  };
  [[nodiscard]] const CheckpointStats& lastCheckpointStats() const noexcept {
    return lastStats_;
  }

 private:
  struct AppSnapshot {
    long iteration = -1;
    // Insertion-ordered so restore() replays saves in checkpoint order.
    std::vector<std::pair<Snapshottable*, std::shared_ptr<Snapshot>>> objects;

    [[nodiscard]] std::shared_ptr<Snapshot> find(
        const Snapshottable* obj) const {
      for (const auto& [o, s] : objects) {
        if (o == obj) return s;
      }
      return nullptr;
    }
  };

  long iteration_ = 0;
  CheckpointMode mode_ = CheckpointMode::Delta;
  LossyConfig lossy_;
  int replication_ = 2;
  std::unique_ptr<AppSnapshot> committed_;
  std::unique_ptr<AppSnapshot> inProgress_;
  CheckpointStats pendingStats_;  ///< accumulates while in progress
  CheckpointStats lastStats_;     ///< promoted by commit()

  /// Observability: the umbrella span opened at startNewSnapshot and
  /// closed by commit/cancelSnapshot, plus the sink it was opened on (so
  /// a sink swapped mid-checkpoint never receives a stray close).
  obs::TraceSink* snapshotSink_ = nullptr;
  std::size_t snapshotSpan_ = 0;
};

}  // namespace rgml::resilient
