// Table IV reproduction: percentage of total runtime consumed by the
// checkpoint (C%) and restore (R%) operations at 44 places, for each
// application under each restoration mode (the Figs. 5-7 experiment).
//
// Paper at 44 places:
//            shrink      shrink-rebal  replace-redundant
//   LinReg   C32 R18     C25 R22       C36 R7
//   LogReg   C26 R15     C19 R22       C27 R16
//   PageRank C10 R7      C10 R10       C11 R4
// Key shape: shrink-rebalance has the highest R%; replace-redundant the
// lowest.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/linreg_resilient.h"
#include "apps/logreg_resilient.h"
#include "apps/pagerank_resilient.h"
#include "bench_util.h"

namespace {

constexpr int kPlaces = 44;

template <typename ResilientApp, typename Config>
std::string makeRow(const char* name, const Config& config,
                    rgml::bench::BenchTracer& tracer) {
  using rgml::framework::RestoreMode;
  std::string row = rgml::bench::rowf("%-10s", name);
  for (RestoreMode mode : {RestoreMode::Shrink, RestoreMode::ShrinkRebalance,
                           RestoreMode::ReplaceRedundant}) {
    const auto stats = tracer.traced(
        rgml::bench::rowf("%s %s", name, rgml::framework::toString(mode)),
        [&] {
          return rgml::bench::runWithFailure<ResilientApp>(config, kPlaces,
                                                           mode);
        });
    row += rgml::bench::rowf(" %7.0f %7.0f",
                             stats.checkpointTime / stats.totalTime * 100,
                             stats.restoreTime / stats.totalTime * 100);
  }
  row += "\n";
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rgml;
  std::printf(
      "# Table IV: %% of total time in checkpoint (C) / restore (R), "
      "%d places\n",
      kPlaces);
  std::printf("%-10s %15s %15s %15s\n", "", "shrink", "shrink-rebal",
              "repl-redundant");
  std::printf("%-10s %7s %7s %7s %7s %7s %7s\n", "app", "C%", "R%", "C%",
              "R%", "C%", "R%");
  // --trace-out / --metrics-out: one lane per (app, mode) run — the Table
  // IV inputs for trace_report's overhead-attribution view.
  bench::BenchTracer tracer(bench::benchTraceOut(argc, argv),
                            bench::benchMetricsOut(argc, argv));
  const std::vector<std::function<std::string()>> rows{
      [&] {
        return makeRow<apps::LinRegResilient>(
            "LinReg", apps::benchLinRegConfig(), tracer);
      },
      [&] {
        return makeRow<apps::LogRegResilient>(
            "LogReg", apps::benchLogRegConfig(), tracer);
      },
      [&] {
        return makeRow<apps::PageRankResilient>(
            "PageRank", apps::benchPageRankConfig(), tracer);
      },
  };
  bench::sweepRows(bench::benchJobs(argc, argv), rows.size(),
                   [&](std::size_t i) { return rows[i](); });
  tracer.write();
  return 0;
}
