// DupDenseMatrix: a dense matrix duplicated at every place of a group
// (x10.matrix.dist.DupDenseMatrix).
#pragma once

#include <cstdint>
#include <memory>

#include "apgas/place_group.h"
#include "apgas/place_local_handle.h"
#include "la/dense_matrix.h"
#include "resilient/snapshot.h"

namespace rgml::gml {

class DupDenseMatrix final : public resilient::Snapshottable {
 public:
  DupDenseMatrix() = default;

  static DupDenseMatrix make(long m, long n, const apgas::PlaceGroup& pg);

  [[nodiscard]] long rows() const noexcept { return m_; }
  [[nodiscard]] long cols() const noexcept { return n_; }
  [[nodiscard]] const apgas::PlaceGroup& placeGroup() const noexcept {
    return pg_;
  }

  /// The replica at the current place.
  [[nodiscard]] la::DenseMatrix& local() const;

  /// Fill at the root replica, then sync().
  void initRandom(std::uint64_t seed, double lo = 0.0, double hi = 1.0);

  /// Broadcast replica `rootIdx` to every other replica.
  void sync(std::size_t rootIdx = 0);

  /// Replicated scale (one finish).
  void scale(double a);

  /// Reallocate over `newPg` (contents zeroed).
  void remake(const apgas::PlaceGroup& newPg);

  [[nodiscard]] std::shared_ptr<resilient::Snapshot> makeSnapshot()
      const override;
  void restoreSnapshot(const resilient::Snapshot& snapshot) override;

 private:
  long m_ = 0;
  long n_ = 0;
  apgas::PlaceGroup pg_;
  apgas::PlaceLocalHandle<la::DenseMatrix> plh_;
};

}  // namespace rgml::gml
