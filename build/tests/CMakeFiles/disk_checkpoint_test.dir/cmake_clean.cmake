file(REMOVE_RECURSE
  "CMakeFiles/disk_checkpoint_test.dir/disk_checkpoint_test.cpp.o"
  "CMakeFiles/disk_checkpoint_test.dir/disk_checkpoint_test.cpp.o.d"
  "disk_checkpoint_test"
  "disk_checkpoint_test.pdb"
  "disk_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
