// Disk staging for snapshots: the classic "checkpoint to reliable storage"
// alternative the paper's in-memory double storage is designed to beat
// (§VI-B contrasts dataflow systems that reload from reliable storage).
//
// persistToDisk() writes every entry of an in-memory Snapshot to one file
// per key (real files, real serialisation — the binary format of
// value_serde.h). loadFromDisk() reconstructs a Snapshot whose copies land
// on the loading place (as if read back from a parallel filesystem) with
// the usual next-place backups.
//
// A disk-staged checkpoint survives ANY number of simultaneous place
// failures — including the adjacent double failure that defeats the
// in-memory store — at the price of disk bandwidth on every checkpoint.
// bench/ablation_disk.cpp quantifies the trade-off.
#pragma once

#include <cstddef>
#include <filesystem>
#include <memory>

#include "apgas/place_group.h"
#include "resilient/snapshot.h"

namespace rgml::resilient {

/// Serialise every surviving entry of `snapshot` (and its metadata) into
/// `dir` (created if absent; existing snapshot files are replaced).
/// Charges serialisation plus disk-write time to the current place.
/// Returns the payload bytes written.
std::size_t persistToDisk(const Snapshot& snapshot,
                          const std::filesystem::path& dir);

/// Rebuild a Snapshot from `dir`. Every value is saved from the first
/// place of `pg` (restores then pull from it, like reading a shared
/// filesystem node). Charges disk-read plus deserialisation time.
[[nodiscard]] std::shared_ptr<Snapshot> loadFromDisk(
    const std::filesystem::path& dir, const apgas::PlaceGroup& pg);

}  // namespace rgml::resilient
