#include "apps/logreg.h"

#include <cmath>

namespace rgml::apps {

using apgas::PlaceGroup;

LogReg::LogReg(const LogRegConfig& config, const PlaceGroup& pg)
    : config_(config), pg_(pg) {}

void LogReg::init() {
  const long places = static_cast<long>(pg_.size());
  const long m = config_.rowsPerPlace * places;
  const long n = config_.features;
  x_ = gml::DistBlockMatrix::makeDense(
      m, n, config_.blocksPerPlace * places, 1, places, 1, pg_);
  x_.initRandom(config_.seed, -1.0, 1.0);
  y_ = gml::DistVector::make(m, pg_);
  // Deterministic 0/1 labels.
  y_.initRandom(config_.seed + 1);
  y_.map([](double v, long) { return v < 0.5 ? 0.0 : 1.0; }, 1.0);
  w_ = gml::DupVector::make(n, pg_);
  grad_ = gml::DupVector::make(n, pg_);
  hg_ = gml::DupVector::make(n, pg_);
  xw_ = gml::DistVector::make(m, pg_);
  tmp_ = gml::DistVector::make(m, pg_);

  w_.init(0.0);
  loss_ = 0.0;
  iteration_ = 0;
}

bool LogReg::isFinished() const { return iteration_ >= config_.iterations; }

void LogReg::step() {
  // Margins: Xw = X * w.
  xw_.mult(x_, w_);

  // Logistic loss: sum_i log(1 + exp(-(2y_i - 1) * xw_i)).
  tmp_.copyFrom(xw_);
  tmp_.map2(y_,
            [](double margin, double label, long) {
              const double signed_margin = (2.0 * label - 1.0) * margin;
              return std::log1p(std::exp(-signed_margin));
            },
            12.0);
  loss_ = tmp_.sum();

  // Errors: e_i = sigmoid(xw_i) - y_i.
  tmp_.copyFrom(xw_);
  tmp_.map2(y_,
            [](double margin, double label, long) {
              return 1.0 / (1.0 + std::exp(-margin)) - label;
            },
            8.0);

  // Gradient: g = X^T e + lambda w.
  grad_.transMult(x_, tmp_);
  grad_.axpy(config_.lambda, w_);

  // Hessian-vector product along g: Hg = X^T (D (X g)) + lambda g, with
  // D_ii = p_i (1 - p_i) from the current margins.
  tmp_.mult(x_, grad_);
  tmp_.map2(xw_,
            [](double xg, double margin, long) {
              const double p = 1.0 / (1.0 + std::exp(-margin));
              return p * (1.0 - p) * xg;
            },
            10.0);
  hg_.transMult(x_, tmp_);
  hg_.axpy(config_.lambda, grad_);

  // Exact minimiser of the quadratic model along -g (fallback step if the
  // curvature degenerates).
  const double gg = grad_.dot(grad_);
  const double curvature = grad_.dot(hg_);
  const double step = curvature > 1e-30 ? gg / curvature : config_.eta;
  w_.axpy(-step, grad_);

  ++iteration_;
}

void LogReg::run() {
  init();
  while (!isFinished()) step();
}

}  // namespace rgml::apps
