// Benchmark workload presets: the paper's weak-scaling experiments with
// per-place problem sizes scaled down so the whole sweep runs on one core.
// The cost model (apgas::paperCalibratedCostModel) compensates the scaling
// so virtual per-iteration times land in the paper's range (EXPERIMENTS.md
// documents the mapping).
#pragma once

#include <vector>

#include "apps/linreg.h"
#include "apps/logreg.h"
#include "apps/pagerank.h"

namespace rgml::apps {

/// Paper: 500 features, 50k rows/place. Bench: 100 features, 5k rows/place.
[[nodiscard]] LinRegConfig benchLinRegConfig();

/// Paper: same data shape as LinReg. Bench: 100 features, 5k rows/place.
[[nodiscard]] LogRegConfig benchLogRegConfig();

/// Paper: 2M edges/place. Bench: 10k pages/place x 20 links = 200k
/// edges/place.
[[nodiscard]] PageRankConfig benchPageRankConfig();

/// The paper's x-axis: 2, 4, 8, 12, ..., 44 places.
[[nodiscard]] std::vector<int> paperPlaceCounts();

}  // namespace rgml::apps
