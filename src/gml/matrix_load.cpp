#include "gml/matrix_load.h"

#include <fstream>

#include "apgas/runtime.h"
#include "serialize/binary_io.h"
#include "serialize/matrix_io.h"

namespace rgml::gml {

using apgas::Place;
using apgas::PlaceGroup;
using apgas::Runtime;

namespace {

/// Root-side parse charge + per-block scatter charges shared by both
/// loaders. The actual block extraction goes through initFromCSR/
/// initFromDense (each place slices its sub-blocks); scatter transfers are
/// charged here from the root's perspective.
void chargeScatter(const DistBlockMatrix& a, const PlaceGroup& pg,
                   std::size_t parsedBytes) {
  Runtime& rt = Runtime::world();
  rt.at(pg(0), [&] {
    rt.chargeSerialization(parsedBytes);  // parse/tokenise at the root
    for (std::size_t s = 0; s < pg.size(); ++s) {
      auto bs = a.blockSetAt(pg(s).id());
      if (!bs) throw apgas::DeadPlaceException(pg(s).id());
      if (pg(s) == pg(0)) continue;
      rt.chargeComm(pg(s), bs->bytes());
    }
  });
}

}  // namespace

DistBlockMatrix loadMatrixMarket(std::istream& in, const PlaceGroup& pg,
                                 long blocksPerPlace) {
  la::SparseCSR global;
  Runtime::world().at(pg(0), [&] {
    global = serialize::readMatrixMarket(in);
  });
  const long places = static_cast<long>(pg.size());
  auto a = DistBlockMatrix::makeSparse(
      global.rows(), global.cols(), blocksPerPlace * places, 1, places, 1,
      /*nnzPerRow=*/1, pg);
  a.initFromCSR(global);
  chargeScatter(a, pg, global.bytes());
  return a;
}

DistBlockMatrix loadMatrixMarketFile(const std::string& path,
                                     const PlaceGroup& pg,
                                     long blocksPerPlace) {
  std::ifstream in(path);
  if (!in) {
    throw serialize::SerializeError("cannot open " + path);
  }
  return loadMatrixMarket(in, pg, blocksPerPlace);
}

DistBlockMatrix loadCsv(std::istream& in, const PlaceGroup& pg,
                        long blocksPerPlace) {
  la::DenseMatrix global;
  Runtime::world().at(pg(0), [&] { global = serialize::readCsv(in); });
  const long places = static_cast<long>(pg.size());
  auto a = DistBlockMatrix::makeDense(global.rows(), global.cols(),
                                      blocksPerPlace * places, 1, places, 1,
                                      pg);
  a.initFromDense(global);
  chargeScatter(a, pg, global.bytes());
  return a;
}

}  // namespace rgml::gml
