# Empty compiler generated dependencies file for fig5_linreg_restore.
# This may be replaced when dependencies are built.
