// Property tests for the Krylov suite (PCG + restarted GMRES), the
// replicated preconditioners and the ILU(0) factorization: oracle
// agreement on band systems, preconditioner equivalence (every M must
// reach the same solution of the same system), the breakdown contract
// (degenerate curvature / singular pivots hold a finite iterate or throw
// a descriptive error), and replica consistency of applyReplicated.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "apgas/runtime.h"
#include "gml/solvers.h"
#include "la/ilu0.h"
#include "la/kernels.h"

namespace rgml::gml {
namespace {

using apgas::Place;
using apgas::PlaceGroup;
using apgas::Runtime;

class KrylovSolversTest : public ::testing::Test {
 protected:
  void SetUp() override { Runtime::init(4); }
};

/// Band CSR with entry (i, j) = fn(i, j) inside the band.
la::SparseCSR bandCSR(long n, long band,
                      const std::function<double(long, long)>& fn) {
  std::vector<long> rowPtr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<long> colIdx;
  std::vector<double> values;
  for (long i = 0; i < n; ++i) {
    const long lo = std::max(0L, i - band);
    const long hi = std::min(n - 1, i + band);
    for (long j = lo; j <= hi; ++j) {
      colIdx.push_back(j);
      values.push_back(fn(i, j));
    }
    rowPtr[static_cast<std::size_t>(i) + 1] =
        static_cast<long>(colIdx.size());
  }
  return {n, n, std::move(rowPtr), std::move(colIdx), std::move(values)};
}

/// Deterministic SPD band matrix (same family as the CgResilient app):
/// strictly diagonally dominant, symmetric, half-bandwidth `band`.
la::SparseCSR spdBandCSR(long n, long band) {
  return bandCSR(n, band, [band](long i, long j) {
    if (j == i) {
      return 2.0 * static_cast<double>(band) + 1.5 +
             0.25 * static_cast<double>(i % 7);
    }
    return -1.0 / (1.0 + static_cast<double>(std::labs(i - j)));
  });
}

/// Nonsymmetric diagonally dominant band matrix (GMRES territory).
la::SparseCSR nonsymBandCSR(long n, long band) {
  return bandCSR(n, band, [band](long i, long j) {
    const double d = static_cast<double>(std::labs(i - j));
    if (j == i) {
      return 2.0 * static_cast<double>(band) + 1.8 +
             0.2 * static_cast<double>(i % 5);
    }
    return j < i ? -1.0 / (1.0 + d) : -0.6 / (1.0 + d);
  });
}

DistBlockMatrix distFromCSR(const la::SparseCSR& global, long band,
                            const PlaceGroup& pg) {
  const long places = static_cast<long>(pg.size());
  auto a = DistBlockMatrix::makeSparse(global.rows(), global.cols(),
                                       2 * places, 1, places, 1,
                                       2 * band + 1, pg);
  a.initFromCSR(global);
  return a;
}

/// True residual ||b - A x||_2 computed with distributed ops.
double trueResidual(const DistBlockMatrix& a, const DistVector& b,
                    const DupVector& x) {
  auto t = DistVector::make(a.rows(), a.placeGroup());
  t.mult(a, x);
  auto r = DistVector::make(a.rows(), a.placeGroup());
  r.copyFrom(b);
  r.axpy(-1.0, t);
  return std::sqrt(r.dot(r));
}

TEST_F(KrylovSolversTest, PcgSolvesSpdBandSystem) {
  auto pg = PlaceGroup::world();
  const long n = 48, band = 2;
  auto a = distFromCSR(spdBandCSR(n, band), band, pg);
  auto b = DistVector::make(n, pg);
  b.initRandom(11);
  auto x = DupVector::make(n, pg);
  x.init(0.0);

  JacobiPreconditioner m;
  m.setup(a);
  auto result = pcg(a, b, x, m, 100, 1e-10);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.residual, 1e-10);
  EXPECT_LT(trueResidual(a, b, x), 1e-8);
}

TEST_F(KrylovSolversTest, PreconditionersAgreeOnTheSolution) {
  // Identity, Jacobi and ILU(0) precondition the SAME system; all three
  // runs must land on the same solution (the preconditioner changes the
  // trajectory, never the fixed point).
  auto pg = PlaceGroup::world();
  const long n = 40, band = 2;
  const la::SparseCSR global = spdBandCSR(n, band);

  IdentityPreconditioner ident;
  JacobiPreconditioner jac;
  Ilu0Preconditioner ilu;
  Preconditioner* preconditioners[] = {&ident, &jac, &ilu};

  std::vector<la::Vector> solutions;
  for (Preconditioner* m : preconditioners) {
    auto a = distFromCSR(global, band, pg);
    auto b = DistVector::make(n, pg);
    b.initRandom(13);
    auto x = DupVector::make(n, pg);
    x.init(0.0);
    m->setup(a);
    auto result = pcg(a, b, x, *m, 200, 1e-12);
    EXPECT_TRUE(result.converged) << m->name();
    la::Vector xv;
    apgas::at(Place(0), [&] { xv = x.local(); });
    solutions.push_back(std::move(xv));
  }
  for (std::size_t k = 1; k < solutions.size(); ++k) {
    for (long i = 0; i < n; ++i) {
      EXPECT_NEAR(solutions[k][i], solutions[0][i], 1e-8)
          << preconditioners[k]->name() << " vs identity at " << i;
    }
  }
}

TEST_F(KrylovSolversTest, PcgIndefiniteBreakdownHoldsIterate) {
  // Diagonal matrix with one negative eigenvalue and b along that
  // direction: the very first curvature p'Ap is negative, so the guard
  // must stop before any update — zero iterations, x still the (finite)
  // starting guess.
  auto pg = PlaceGroup::world();
  const long n = 8;
  const la::SparseCSR global = bandCSR(
      n, 0, [n](long i, long) { return i == n - 1 ? -1.0 : 1.0; });
  auto a = distFromCSR(global, 0, pg);
  auto b = DistVector::make(n, pg);
  b.init([n](long i) { return i == n - 1 ? 1.0 : 0.0; });
  auto x = DupVector::make(n, pg);
  x.init(0.0);

  IdentityPreconditioner m;
  m.setup(a);
  auto result = pcg(a, b, x, m, 20, 0.0);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 0);
  apgas::at(Place(0), [&] {
    for (long i = 0; i < n; ++i) {
      EXPECT_EQ(x.local()[i], 0.0);
    }
  });
}

TEST_F(KrylovSolversTest, GmresSolvesNonsymmetricSystem) {
  auto pg = PlaceGroup::world();
  const long n = 48, band = 2;
  auto a = distFromCSR(nonsymBandCSR(n, band), band, pg);
  auto b = DistVector::make(n, pg);
  b.initRandom(17);
  auto x = DupVector::make(n, pg);
  x.init(0.0);

  Ilu0Preconditioner m;
  m.setup(a);
  auto result = gmres(a, b, x, m, 8, 20, 1e-10);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(trueResidual(a, b, x), 1e-7);
}

TEST_F(KrylovSolversTest, GmresHappyBreakdownOnIdentity) {
  // A = I: the first Arnoldi vector already spans the Krylov space, the
  // new-basis norm vanishes (happy breakdown) and the cycle's solution
  // is exact after a single inner step.
  auto pg = PlaceGroup::world();
  const long n = 16;
  const la::SparseCSR eye = bandCSR(n, 0, [](long, long) { return 1.0; });
  auto a = distFromCSR(eye, 0, pg);
  auto b = DistVector::make(n, pg);
  b.initRandom(19);
  auto x = DupVector::make(n, pg);
  x.init(0.0);

  IdentityPreconditioner m;
  m.setup(a);
  auto result = gmres(a, b, x, m, 5, 3, 1e-12);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 1);
  la::Vector bv(n);
  b.copyTo(bv);
  apgas::at(Place(0), [&] {
    for (long i = 0; i < n; ++i) {
      EXPECT_NEAR(x.local()[i], bv[i], 1e-12);
    }
  });
}

TEST_F(KrylovSolversTest, Ilu0IsExactLuOnTridiagonal) {
  // On a tridiagonal pattern ILU(0) has no dropped fill, so it IS the LU
  // factorization: applying the preconditioner solves the system exactly.
  const long n = 12;
  const la::SparseCSR a = spdBandCSR(n, 1);
  const la::Ilu0 f = la::ilu0Factor(a);
  la::Vector r(n), z(n), az(n);
  for (long i = 0; i < n; ++i) r[i] = 0.3 + 0.1 * static_cast<double>(i);
  la::ilu0Solve(f, r, z);
  la::spmv(a, z.span(), az.span());
  for (long i = 0; i < n; ++i) {
    EXPECT_NEAR(az[i], r[i], 1e-10) << "row " << i;
  }
}

TEST_F(KrylovSolversTest, Ilu0ThrowsNamingRowOnMissingDiagonal) {
  // Row 2 has no structural diagonal — unfactorable on its own pattern.
  la::SparseCSR a(4, 4, {0, 1, 2, 3, 4}, {0, 1, 3, 3},
                  {2.0, 2.0, 1.0, 2.0});
  try {
    static_cast<void>(la::ilu0Factor(a));
    FAIL() << "ilu0Factor accepted a missing diagonal";
  } catch (const apgas::ApgasError& e) {
    EXPECT_NE(std::string(e.what()).find("row 2"), std::string::npos)
        << e.what();
  }
}

TEST_F(KrylovSolversTest, Ilu0ThrowsOnDegeneratePivot) {
  // [[1,1],[1,1]]: u11 = 1, l21 = 1, u22 = 1 - 1*1 = 0 — pivot
  // degenerates at row 1 and ILU(0) has no pivoting to recover.
  la::SparseCSR a(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {1.0, 1.0, 1.0, 1.0});
  try {
    static_cast<void>(la::ilu0Factor(a));
    FAIL() << "ilu0Factor accepted a zero pivot";
  } catch (const apgas::ApgasError& e) {
    EXPECT_NE(std::string(e.what()).find("row 1"), std::string::npos)
        << e.what();
  }
}

TEST_F(KrylovSolversTest, JacobiPreconditionerRejectsZeroDiagonal) {
  auto pg = PlaceGroup::world();
  const long n = 8, band = 1;
  // Diagonally dominant tridiagonal except row 3, whose diagonal is 0.
  const la::SparseCSR global = bandCSR(n, band, [](long i, long j) {
    if (i == j) return i == 3 ? 0.0 : 4.0;
    return -1.0;
  });
  auto a = distFromCSR(global, band, pg);
  JacobiPreconditioner m;
  try {
    m.setup(a);
    FAIL() << "JacobiPreconditioner accepted a zero diagonal";
  } catch (const apgas::ApgasError& e) {
    EXPECT_NE(std::string(e.what()).find("row 3"), std::string::npos)
        << e.what();
  }
}

TEST_F(KrylovSolversTest, ApplyReplicatedKeepsReplicasConsistent) {
  // z = M^{-1} r must hold the SAME values at every replica, and agree
  // with a host-side apply on the same data.
  auto pg = PlaceGroup::world();
  const long n = 24, band = 2;
  auto a = distFromCSR(spdBandCSR(n, band), band, pg);
  Ilu0Preconditioner m;
  m.setup(a);

  auto r = DupVector::make(n, pg);
  r.initRandom(23);
  auto z = DupVector::make(n, pg);
  z.init(0.0);
  applyReplicated(m, r, z);

  la::Vector rv;
  apgas::at(Place(0), [&] { rv = r.local(); });
  la::Vector expect(n);
  m.apply(rv, expect);
  for (apgas::PlaceId p : pg) {
    la::Vector zv;
    apgas::at(Place(p), [&] { zv = z.local(); });
    ASSERT_EQ(zv.size(), n);
    for (long i = 0; i < n; ++i) {
      EXPECT_EQ(zv[i], expect[i]) << "place " << p << " row " << i;
    }
  }
}

}  // namespace
}  // namespace rgml::gml
