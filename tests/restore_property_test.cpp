// Parameterized property sweeps over the restore machinery:
//   * sparse DistBlockMatrix restore exactness across place counts,
//     victims, modes and sparsity;
//   * DistVector repartitioned restore across arbitrary old->new place
//     count pairs;
//   * snapshot recoverability for every single-victim position.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "apgas/runtime.h"
#include "gml/dist_block_matrix.h"
#include "gml/dist_vector.h"
#include "la/rand.h"

namespace rgml::gml {
namespace {

using apgas::Place;
using apgas::PlaceGroup;
using apgas::Runtime;

// ---- sparse restore sweep ----------------------------------------------------

struct SparseRestoreCase {
  int places;
  int victim;
  bool rebalance;
  long nnzPerRow;
};

class SparseRestoreProperty
    : public ::testing::TestWithParam<SparseRestoreCase> {};

TEST_P(SparseRestoreProperty, RestoreIsExact) {
  const auto cfg = GetParam();
  Runtime::init(cfg.places + 1);
  auto pg = PlaceGroup::firstPlaces(static_cast<std::size_t>(cfg.places));
  const long n = 12L * cfg.places;
  auto a = DistBlockMatrix::makeSparse(n, n, 2L * cfg.places, 1, cfg.places,
                                       1, cfg.nnzPerRow, pg);
  auto global = la::makeUniformSparse(
      n, n, cfg.nnzPerRow,
      static_cast<std::uint64_t>(cfg.places * 100 + cfg.victim));
  a.initFromCSR(global);
  auto snap = a.makeSnapshot();

  Runtime::world().kill(cfg.victim);
  auto live = pg.filterDead();
  if (cfg.rebalance) {
    a.remakeRebalance(live);
  } else {
    a.remakeShrink(live);
  }
  a.restoreSnapshot(*snap);
  for (long i = 0; i < n; ++i) {
    for (long j = 0; j < n; ++j) {
      ASSERT_EQ(a.at(i, j), global.at(i, j))
          << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseRestoreProperty,
    ::testing::Values(SparseRestoreCase{2, 1, false, 2},
                      SparseRestoreCase{2, 1, true, 2},
                      SparseRestoreCase{3, 1, true, 5},
                      SparseRestoreCase{4, 2, false, 3},
                      SparseRestoreCase{4, 2, true, 3},
                      SparseRestoreCase{5, 4, true, 8},
                      SparseRestoreCase{6, 3, false, 1},
                      SparseRestoreCase{6, 3, true, 1},
                      SparseRestoreCase{7, 1, true, 4},
                      SparseRestoreCase{8, 5, true, 6}));

// ---- randomized sparse repartition sweep ----------------------------------------
// Property: an overlapping-region (rebalance) restore after a failure must
// reassemble the sparse matrix *exactly* on the new grid — the total
// stored-nonzero count across all distributed blocks and every stored
// value survive the repartitioning bit-for-bit. All case parameters are
// drawn from a SplitMix64 stream so each seed is a reproducible instance.

struct SparseSummary {
  long nnz = 0;
  std::vector<double> sortedValues;  ///< grid-order independent multiset
};

SparseSummary summarizeBlocks(const DistBlockMatrix& m) {
  SparseSummary s;
  for (apgas::PlaceId p : m.placeGroup()) {
    const auto set = m.blockSetAt(p);
    if (!set) continue;
    for (const la::MatrixBlock& block : *set) {
      if (!block.isSparse()) continue;
      s.nnz += block.sparse().nnz();
      const auto vals = block.sparse().values();
      s.sortedValues.insert(s.sortedValues.end(), vals.begin(), vals.end());
    }
  }
  std::sort(s.sortedValues.begin(), s.sortedValues.end());
  return s;
}

class SparseRepartitionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseRepartitionProperty, RebalancePreservesNonzerosExactly) {
  la::SplitMix64 rng(GetParam());
  const int places = 2 + static_cast<int>(rng.nextLong(6));     // [2, 7]
  const int victim = 1 + static_cast<int>(rng.nextLong(places - 1));
  const long nnzPerRow = 1 + rng.nextLong(8);                   // [1, 8]
  const long rowBlocks = places + rng.nextLong(2L * places);    // > places

  Runtime::init(places + 1);
  auto pg = PlaceGroup::firstPlaces(static_cast<std::size_t>(places));
  const long n = 8L * rowBlocks;
  auto a = DistBlockMatrix::makeSparse(n, n, rowBlocks, 1, places, 1,
                                       nnzPerRow, pg);
  auto global = la::makeUniformSparse(n, n, nnzPerRow, GetParam() * 977 + 1);
  a.initFromCSR(global);

  const SparseSummary before = summarizeBlocks(a);
  ASSERT_EQ(before.nnz, global.nnz());
  auto snap = a.makeSnapshot();

  Runtime::world().kill(victim);
  a.remakeRebalance(pg.filterDead());
  a.restoreSnapshot(*snap);

  const SparseSummary after = summarizeBlocks(a);
  EXPECT_EQ(after.nnz, before.nnz);
  EXPECT_EQ(after.sortedValues, before.sortedValues);  // bit-exact
  for (long i = 0; i < n; ++i) {
    for (long j = 0; j < n; ++j) {
      ASSERT_EQ(a.at(i, j), global.at(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseRepartitionProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- vector resize sweep ------------------------------------------------------

class VectorResizeProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(VectorResizeProperty, RepartitionedRestoreIsExact) {
  const auto [oldPlaces, newPlaces] = GetParam();
  Runtime::init(std::max(oldPlaces, newPlaces));
  const long n = 91;  // prime-ish: misaligned segment boundaries
  auto v = DistVector::make(n, PlaceGroup::firstPlaces(
                                   static_cast<std::size_t>(oldPlaces)));
  v.initRandom(static_cast<std::uint64_t>(oldPlaces * 31 + newPlaces));
  la::Vector before(n);
  v.copyTo(before);
  auto snap = v.makeSnapshot();

  v.remake(PlaceGroup::firstPlaces(static_cast<std::size_t>(newPlaces)));
  v.restoreSnapshot(*snap);
  la::Vector after(n);
  v.copyTo(after);
  EXPECT_EQ(after, before);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VectorResizeProperty,
    ::testing::Values(std::pair<int, int>{1, 7}, std::pair<int, int>{7, 1},
                      std::pair<int, int>{2, 3}, std::pair<int, int>{3, 2},
                      std::pair<int, int>{4, 7}, std::pair<int, int>{7, 4},
                      std::pair<int, int>{5, 5},
                      std::pair<int, int>{6, 13},
                      std::pair<int, int>{13, 6}));

// ---- single-victim recoverability ------------------------------------------------

class VictimSweepProperty : public ::testing::TestWithParam<int> {};

TEST_P(VictimSweepProperty, AnySingleFailureIsRecoverable) {
  const int victim = GetParam();
  Runtime::init(6);
  auto pg = PlaceGroup::world();
  auto a = DistBlockMatrix::makeDense(24, 4, 12, 1, 6, 1, pg);
  a.initRandom(static_cast<std::uint64_t>(victim) + 1);
  la::DenseMatrix before = a.toDense();
  auto snap = a.makeSnapshot();

  Runtime::world().kill(victim);
  a.remakeShrink(pg.filterDead());
  a.restoreSnapshot(*snap);
  EXPECT_EQ(a.toDense(), before);
}

INSTANTIATE_TEST_SUITE_P(AllVictims, VictimSweepProperty,
                         ::testing::Range(1, 6));

}  // namespace
}  // namespace rgml::gml
