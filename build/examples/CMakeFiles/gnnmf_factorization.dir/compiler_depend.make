# Empty compiler generated dependencies file for gnnmf_factorization.
# This may be replaced when dependencies are built.
