// Text-format matrix I/O: MatrixMarket coordinate format for sparse
// matrices and CSV for dense matrices — the interchange formats a user
// would load real datasets from.
#pragma once

#include <iosfwd>

#include "la/dense_matrix.h"
#include "la/sparse_csr.h"

namespace rgml::serialize {

/// Writes `value` in MatrixMarket coordinate format
/// (%%MatrixMarket matrix coordinate real general; 1-based indices).
void writeMatrixMarket(std::ostream& out, const la::SparseCSR& value);

/// Reads a MatrixMarket coordinate-format matrix. Accepts unsorted entries
/// and comment lines; throws SerializeError on malformed input.
[[nodiscard]] la::SparseCSR readMatrixMarket(std::istream& in);

/// Writes `value` as CSV (one row per line, full precision).
void writeCsv(std::ostream& out, const la::DenseMatrix& value);

/// Reads a CSV dense matrix; all rows must have the same column count.
[[nodiscard]] la::DenseMatrix readCsv(std::istream& in);

}  // namespace rgml::serialize
