// RESILIENT Logistic Regression: the LogReg algorithm in the framework's
// four-method programming model (paper §V-A2, Table II).
#pragma once

#include <cstdint>

#include "apps/logreg.h"
#include "framework/resilient_executor.h"
#include "gml/dist_block_matrix.h"
#include "gml/dist_vector.h"
#include "gml/dup_vector.h"
#include "resilient/snapshottable_scalars.h"

namespace rgml::apps {

class LogRegResilient final : public framework::ResilientIterativeApp {
 public:
  LogRegResilient(const LogRegConfig& config, const apgas::PlaceGroup& pg);

  void init();

  // -- framework programming model ---------------------------------------
  [[nodiscard]] bool isFinished() override;
  void step() override;
  void checkpoint(resilient::AppResilientStore& store) override;
  void restore(const apgas::PlaceGroup& newPlaces,
               resilient::AppResilientStore& store, long snapshotIter,
               framework::RestoreMode mode) override;

  /// The training loss gradient descent minimises (reconvergence
  /// measure after a lossy restart).
  [[nodiscard]] double convergenceMetric() override { return loss_; }

  [[nodiscard]] long iteration() const noexcept { return iteration_; }
  [[nodiscard]] double loss() const noexcept { return loss_; }
  [[nodiscard]] const gml::DupVector& weights() const noexcept { return w_; }
  [[nodiscard]] const apgas::PlaceGroup& places() const noexcept {
    return pg_;
  }

 private:
  LogRegConfig config_;
  apgas::PlaceGroup pg_;

  gml::DistBlockMatrix x_;  ///< read-only
  gml::DistVector y_;       ///< read-only
  gml::DupVector w_;
  gml::DupVector grad_;  ///< scratch
  gml::DupVector hg_;    ///< scratch
  gml::DistVector xw_;   ///< scratch
  gml::DistVector tmp_;  ///< scratch
  resilient::SnapshottableScalars scalars_;  ///< {loss, iteration}

  double loss_ = 0.0;
  long iteration_ = 0;
};

}  // namespace rgml::apps
