#include "obs/chrome_trace.h"

#include <iomanip>
#include <set>
#include <sstream>

namespace rgml::obs {

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

/// Simulated seconds -> Chrome trace microseconds.
std::string us(double seconds) { return num(seconds * 1e6); }

int tidOf(const Span& s) { return s.place >= 0 ? s.place : 0; }

}  // namespace

void writeChromeTrace(const std::vector<TraceLane>& lanes,
                      std::ostream& os) {
  os << "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };

  for (const TraceLane& lane : lanes) {
    sep();
    os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
       << lane.pid << ", \"tid\": 0, \"args\": {\"name\": \""
       << jsonEscape(lane.name) << "\"}}";
    std::set<int> tids;
    for (const Span& s : lane.spans) tids.insert(tidOf(s));
    for (int tid : tids) {
      sep();
      os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
         << lane.pid << ", \"tid\": " << tid
         << ", \"args\": {\"name\": \"place " << tid << "\"}}";
    }
    for (const Span& s : lane.spans) {
      sep();
      os << "  {\"name\": \"" << jsonEscape(s.name) << "\", \"cat\": \""
         << toString(s.category) << "\", \"ph\": \"X\", \"ts\": "
         << us(s.startTime) << ", \"dur\": "
         << us(s.endTime - s.startTime) << ", \"pid\": " << lane.pid
         << ", \"tid\": " << tidOf(s) << ", \"args\": {\"iteration\": "
         << s.iteration << ", \"bytes\": " << s.bytes
         << ", \"depth\": " << s.depth;
      for (const auto& [key, value] : s.args) {
        os << ", \"" << jsonEscape(key) << "\": \"" << jsonEscape(value)
           << '"';
      }
      os << "}}";
    }
  }
  os << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
}

std::string toChromeTraceJson(const std::vector<TraceLane>& lanes) {
  std::ostringstream os;
  writeChromeTrace(lanes, os);
  return os.str();
}

}  // namespace rgml::obs
