// Cross-module integration tests: whole-application scenarios stressing
// the interplay of the runtime, GML classes, snapshot store and executor —
// cascading failures, failures during restore, double failures between
// checkpoints, elastic growth, and cost-model shape sanity.
#include <gtest/gtest.h>

#include "apgas/runtime.h"
#include "apps/linreg_resilient.h"
#include "apps/pagerank_resilient.h"
#include "apps/workloads.h"
#include "framework/resilient_executor.h"

namespace rgml {
namespace {

using apgas::CostModel;
using apgas::FaultInjector;
using apgas::Place;
using apgas::PlaceGroup;
using apgas::Runtime;
using framework::ExecutorConfig;
using framework::ResilientExecutor;
using framework::RestoreMode;

apps::LinRegConfig tinyLinReg() {
  apps::LinRegConfig cfg;
  cfg.features = 6;
  cfg.rowsPerPlace = 20;
  cfg.blocksPerPlace = 2;
  cfg.iterations = 30;
  return cfg;
}

TEST(IntegrationTest, ThreeCascadingFailuresShrinkToOnePlaceless) {
  Runtime::init(8, CostModel{}, true);
  auto pg = PlaceGroup::firstPlaces(6);
  apps::LinRegResilient app(tinyLinReg(), pg);
  app.init();

  FaultInjector injector;
  injector.killOnIteration(12, 1);
  injector.killOnIteration(18, 3);
  injector.killOnIteration(24, 5);

  ExecutorConfig cfg;
  cfg.places = pg;
  cfg.checkpointInterval = 10;
  cfg.mode = RestoreMode::Shrink;
  ResilientExecutor executor(cfg);
  auto stats = executor.run(app, &injector);

  EXPECT_EQ(stats.failuresHandled, 3);
  EXPECT_EQ(stats.iterationsCompleted, 30);
  EXPECT_EQ(stats.finalPlaces.ids(), (std::vector<apgas::PlaceId>{0, 2, 4}));
}

TEST(IntegrationTest, SimultaneousDoubleFailureNonAdjacent) {
  Runtime::init(6, CostModel{}, true);
  auto pg = PlaceGroup::firstPlaces(5);
  apps::LinRegResilient app(tinyLinReg(), pg);
  app.init();

  FaultInjector injector;
  // Places 1 and 3 die in the same iteration: non-adjacent, so every
  // snapshot value still has a surviving copy.
  injector.killOnIteration(15, 1);
  injector.killOnIteration(15, 3);

  ExecutorConfig cfg;
  cfg.places = pg;
  cfg.checkpointInterval = 10;
  cfg.mode = RestoreMode::ShrinkRebalance;
  ResilientExecutor executor(cfg);
  auto stats = executor.run(app, &injector);
  EXPECT_EQ(stats.iterationsCompleted, 30);
  EXPECT_EQ(stats.finalPlaces.size(), 3u);
}

TEST(IntegrationTest, AdjacentDoubleFailureIsUnrecoverable) {
  Runtime::init(6, CostModel{}, true);
  auto pg = PlaceGroup::firstPlaces(5);
  apps::LinRegResilient app(tinyLinReg(), pg);
  app.init();

  FaultInjector injector;
  injector.killOnIteration(15, 2);
  injector.killOnIteration(15, 3);  // adjacent: snapshot data lost

  ExecutorConfig cfg;
  cfg.places = pg;
  cfg.checkpointInterval = 10;
  ResilientExecutor executor(cfg);
  // The executor recognises snapshot loss (both adjacent replicas of the
  // idx-2 entries are gone) and converts it to a clean UnrecoverableError
  // instead of retrying or surfacing the raw SnapshotLostException.
  try {
    executor.run(app, &injector);
    FAIL() << "executor should have reported unrecoverable data loss";
  } catch (const apgas::UnrecoverableError& e) {
    EXPECT_NE(std::string(e.what()).find("replication factor"),
              std::string::npos);
  }
}

TEST(IntegrationTest, SimultaneousNonAdjacentKillsHandledInOnePass) {
  Runtime::init(8, CostModel{}, true);
  auto pg = PlaceGroup::firstPlaces(6);
  apps::LinRegResilient app(tinyLinReg(), pg);
  app.init();

  ExecutorConfig cfg;
  cfg.places = pg;
  cfg.checkpointInterval = 10;
  cfg.mode = RestoreMode::Shrink;
  ResilientExecutor executor(cfg);

  // Two non-adjacent places die in the same iteration: every snapshot
  // value keeps a surviving copy, and one restore pass handles both.
  FaultInjector injector;
  injector.killOnIteration(15, 1);
  injector.killOnIteration(15, 4);

  auto stats = executor.run(app, &injector);
  EXPECT_EQ(stats.iterationsCompleted, 30);
  EXPECT_EQ(stats.finalPlaces.size(), 4u);
}

TEST(IntegrationTest, ReadOnlyRedundancyHoleWithoutPostRestoreCheckpoint) {
  // The saveReadOnly snapshot of PageRank's graph is taken once (iteration
  // 10) and reused. After place 2 dies, the graph's idx-2 entries survive
  // only on their backup holder, place 3. When place 3 dies later, the
  // read-only data is lost even though the application recovered from the
  // first failure in between.
  Runtime::init(6, CostModel{}, true);
  auto pg = PlaceGroup::world();
  apps::PageRankConfig prCfg;
  prCfg.pagesPerPlace = 25;
  prCfg.linksPerPage = 4;
  prCfg.iterations = 30;
  prCfg.exactGraph = true;
  apps::PageRankResilient app(prCfg, pg);
  app.init();

  FaultInjector injector;
  injector.killOnIteration(12, 2);
  injector.killOnIteration(22, 3);  // ring-backup holder of place 2's data

  ExecutorConfig cfg;
  cfg.places = pg;
  cfg.checkpointInterval = 10;
  cfg.mode = RestoreMode::Shrink;
  ResilientExecutor executor(cfg);
  try {
    executor.run(app, &injector);
    FAIL() << "second failure should lose the reused read-only snapshot";
  } catch (const apgas::UnrecoverableError& e) {
    EXPECT_NE(std::string(e.what()).find("replication factor"),
              std::string::npos);
  }
}

TEST(IntegrationTest, CheckpointAfterRestoreClosesRedundancyHole) {
  // Same failure schedule as above, but the executor re-checkpoints after
  // each restore, re-doubling every snapshot (including read-only ones)
  // over the new group: the run survives both failures.
  Runtime::init(6, CostModel{}, true);
  auto pg = PlaceGroup::world();
  apps::PageRankConfig prCfg;
  prCfg.pagesPerPlace = 25;
  prCfg.linksPerPage = 4;
  prCfg.iterations = 30;
  prCfg.exactGraph = true;
  apps::PageRankResilient app(prCfg, pg);
  app.init();

  FaultInjector injector;
  injector.killOnIteration(12, 2);
  injector.killOnIteration(22, 3);

  ExecutorConfig cfg;
  cfg.places = pg;
  cfg.checkpointInterval = 10;
  cfg.mode = RestoreMode::Shrink;
  cfg.checkpointAfterRestore = true;
  ResilientExecutor executor(cfg);
  auto stats = executor.run(app, &injector);
  EXPECT_EQ(stats.failuresHandled, 2);
  EXPECT_EQ(stats.iterationsCompleted, 30);
  EXPECT_EQ(stats.finalPlaces.size(), 4u);
  EXPECT_NEAR(app.rankSum(), 1.0, 1e-9);
}

TEST(IntegrationTest, ElasticModeGrowsWorldAcrossFailures) {
  Runtime::init(6, CostModel{}, true);
  auto pg = PlaceGroup::world();
  apps::PageRankConfig prCfg;
  prCfg.pagesPerPlace = 25;
  prCfg.linksPerPage = 4;
  prCfg.iterations = 30;
  prCfg.exactGraph = true;
  apps::PageRankResilient app(prCfg, pg);
  app.init();

  // Victims 2 and 5 are not ring-adjacent in the original group, so the
  // saveReadOnly snapshot of the graph (taken once at iteration 10 and
  // reused) keeps a surviving copy of every entry. A second failure on the
  // first victim's backup holder would lose read-only data — that hazard
  // is covered by AdjacentDoubleFailureIsUnrecoverable.
  FaultInjector injector;
  injector.killOnIteration(12, 2);
  injector.killOnIteration(22, 5);

  ExecutorConfig cfg;
  cfg.places = pg;
  cfg.checkpointInterval = 10;
  cfg.mode = RestoreMode::ReplaceElastic;
  ResilientExecutor executor(cfg);
  auto stats = executor.run(app, &injector);

  EXPECT_EQ(stats.failuresHandled, 2);
  EXPECT_EQ(stats.finalPlaces.size(), 6u);
  EXPECT_EQ(Runtime::world().numPlaces(), 8);  // two elastic places added
  EXPECT_NEAR(app.rankSum(), 1.0, 1e-9);
}

TEST(IntegrationTest, ResilientFinishOverheadShapeMatchesPaper) {
  // Figs. 2-4 shape check at miniature scale: the resilient/non-resilient
  // per-iteration ratio grows with the place count.
  auto timePerIteration = [](int places, bool resilient) {
    Runtime::init(places, apgas::paperCalibratedCostModel(), resilient);
    auto cfg = tinyLinReg();
    // Enough per-place compute that the baseline has a constant component
    // (weak scaling); the bookkeeping overhead then grows *relative* to it.
    cfg.features = 50;
    cfg.rowsPerPlace = 2000;
    cfg.iterations = 5;
    apps::LinReg app(cfg, PlaceGroup::world());
    app.init();
    Runtime& rt = Runtime::world();
    const double t0 = rt.time();
    while (!app.isFinished()) app.step();
    return (rt.time() - t0) / 5.0;
  };
  const double ratio4 = timePerIteration(4, true) / timePerIteration(4, false);
  const double ratio16 =
      timePerIteration(16, true) / timePerIteration(16, false);
  EXPECT_GT(ratio4, 1.0);
  EXPECT_GT(ratio16, ratio4);
}

TEST(IntegrationTest, RestoreModeCostOrderingMatchesTable4) {
  // Paper Table IV / §VII-C: shrink-rebalance has the highest restore
  // cost; shrink and replace-redundant are close to each other (the paper
  // itself sees either one ahead depending on the application).
  auto restoreTime = [](RestoreMode mode) {
    Runtime::init(10, apgas::paperCalibratedCostModel(), true);
    auto pg = PlaceGroup::firstPlaces(8);
    apps::LinRegConfig cfg = tinyLinReg();
    // Byte-dominated sizes: the mode differences come from data movement,
    // not per-message latency.
    cfg.features = 20;
    cfg.rowsPerPlace = 4000;
    apps::LinRegResilient app(cfg, pg);
    app.init();
    FaultInjector injector;
    injector.killOnIteration(15, 3);
    ExecutorConfig ecfg;
    ecfg.places = pg;
    ecfg.spares = {8, 9};
    ecfg.checkpointInterval = 10;
    ecfg.mode = mode;
    ResilientExecutor executor(ecfg);
    return executor.run(app, &injector).restoreTime;
  };
  const double shrink = restoreTime(RestoreMode::Shrink);
  const double rebalance = restoreTime(RestoreMode::ShrinkRebalance);
  const double redundant = restoreTime(RestoreMode::ReplaceRedundant);
  // Robust orderings (paper §VII-C): repartitioning makes shrink-rebalance
  // dearer than shrink's block-by-block restore. Replace-redundant stays
  // within the same magnitude; its exact rank differs per application in
  // the paper too (see EXPERIMENTS.md for the modelling note).
  EXPECT_GT(rebalance, shrink);
  EXPECT_LE(redundant, rebalance * 2.0);
  EXPECT_LE(redundant, shrink * 2.0);
  EXPECT_LE(shrink, redundant * 2.0);
}

}  // namespace
}  // namespace rgml
