// Span: the unit of the unified observability layer (src/obs/).
//
// A span is one timed interval of work in one execution — an executor
// step, a store save, a restore path, a data message — tagged with the
// category, logical iteration, place, payload bytes, and free-form
// key/value annotations (restore mode, victim place, code path). Span
// times are in the owning backend's clock domain: simulated seconds on
// the Simulated backend (bit-identical across job counts and machines),
// real wall-clock seconds on the Threads backend, where spans also carry
// the emitting OS thread's tag in `tid` (see obs::TidScope).
//
// The obs module depends on nothing but the standard library; every
// layer of the system (apgas runtime, resilient store, GML matrices,
// framework executor, chaos harness) can include it without cycles.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rgml::obs {

/// What kind of work a span measures. Mirrors the phases the paper's
/// evaluation attributes time to (step / checkpoint / restore), plus the
/// runtime-level activities underneath them.
enum class Category {
  Step,              ///< one application iteration
  CheckpointSave,    ///< snapshotting state into the store
  CheckpointCommit,  ///< atomic promotion of an in-progress snapshot
  CheckpointCancel,  ///< discarding a half-taken snapshot
  Restore,           ///< rollback work (store + GML restore paths)
  Comms,             ///< data messages between places
  Kill,              ///< a place failure
  Finish,            ///< resilient-finish bookkeeping (place-0 ack waits)
  Run,               ///< anything else (whole-run umbrella, harness)
};

[[nodiscard]] const char* toString(Category category);

/// Inverse of toString: parses the exported "cat" label back into the
/// enum. Returns false (leaving `out` untouched) for unknown labels.
[[nodiscard]] bool parseCategory(const std::string& name, Category& out);

struct Span {
  Category category = Category::Run;
  std::string name;        ///< e.g. "step", "store.save", "comm"
  long iteration = -1;     ///< logical iteration; -1 when not applicable
  int place = -1;          ///< emitting place; -1 when not place-bound
  /// Process-unique tag of the emitting OS thread (obs::osThreadTag),
  /// stamped by the sink from the active TidScope. -1 on the simulated
  /// backend, where all places share one host thread and a real thread
  /// id would break cross-machine trace determinism.
  int tid = -1;
  double startTime = 0.0;  ///< simulated seconds
  double endTime = 0.0;    ///< simulated seconds (== startTime: instant)
  std::uint64_t bytes = 0; ///< payload bytes attributed to this span
  int depth = 0;           ///< nesting depth at emission (0 = top level)
  /// The executor phase active at emission ("step", "checkpoint",
  /// "restore"; empty outside any tagged phase). Set automatically by the
  /// TraceSink from its phase stack (see PhaseScope), so every nested
  /// span — store saves, comms, finish acks — is attributable to the
  /// executor phase it ran under.
  std::string phase;
  /// Extra annotations, e.g. {"mode", "shrink"}, {"victim", "3"},
  /// {"path", "repartitioned"}. Exported into the Chrome-trace `args`.
  std::vector<std::pair<std::string, std::string>> args;

  [[nodiscard]] double duration() const { return endTime - startTime; }

  /// The value of annotation `key`; empty string when absent.
  [[nodiscard]] std::string arg(const std::string& key) const {
    for (const auto& [k, v] : args) {
      if (k == key) return v;
    }
    return {};
  }
};

}  // namespace rgml::obs
