// DupVector: a vector duplicated at every place of a PlaceGroup
// (x10.matrix.distblock.DupVector).
//
// Replicated elementwise operations are applied at every place (one finish
// each), keeping all replicas consistent; reductions over duplicated data
// (dot, norm) are computed locally with no communication. sync() re-copies
// one replica to all others (the "broadcast" of the paper's PageRank,
// Listing 2 line 17).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "apgas/place_group.h"
#include "apgas/place_local_handle.h"
#include "la/vector.h"
#include "resilient/snapshot.h"

namespace rgml::gml {

class DistBlockMatrix;
class DistVector;

class DupVector final : public resilient::Snapshottable {
 public:
  DupVector() = default;

  /// A zero vector of length n duplicated over `pg`.
  static DupVector make(long n, const apgas::PlaceGroup& pg);

  [[nodiscard]] long size() const noexcept { return n_; }
  [[nodiscard]] const apgas::PlaceGroup& placeGroup() const noexcept {
    return pg_;
  }

  /// The replica at the current place (X10's `P.local()`).
  [[nodiscard]] la::Vector& local() const;

  /// Set every replica's elements to `v`.
  void init(double v);
  /// Fill with deterministic uniform values in [lo, hi) at the root
  /// replica, then sync().
  void initRandom(std::uint64_t seed, double lo = 0.0, double hi = 1.0);
  /// Initialise element i to fn(i) at the root replica, then sync().
  void init(const std::function<double(long)>& fn);

  /// Broadcast algorithm for sync(): GML's evaluated version uses Flat
  /// (the root sends to each member in turn — linear in the group size,
  /// the paper's non-resilient scaling driver); Tree is the binomial
  /// alternative (logarithmic), kept as an ablation.
  enum class SyncAlgorithm { Flat, Tree };
  void setSyncAlgorithm(SyncAlgorithm alg) noexcept { syncAlg_ = alg; }

  /// Broadcast replica `rootIdx` to every other replica.
  void sync(std::size_t rootIdx = 0);

  // -- replicated elementwise operations (one finish each) ---------------
  void scale(double a);
  void cellAdd(const DupVector& other);
  void cellAdd(double c);
  /// this += a * x.
  void axpy(double a, const DupVector& x);
  void copyFrom(const DupVector& other);

  // -- local reductions (replicas identical; no communication) -----------
  [[nodiscard]] double dot(const DupVector& other) const;
  [[nodiscard]] double norm2() const;
  [[nodiscard]] double sum() const;

  /// this = A^T * y, replicated. Each place computes a partial from its
  /// blocks, partials are reduced at the root and broadcast (the dominant
  /// communication of LinReg/LogReg).
  void transMult(const DistBlockMatrix& A, const DistVector& y);

  /// Gather a distributed vector into every replica: flat gather at the
  /// root replica followed by sync() (PageRank's Listing 2 lines 15-17
  /// pattern as one call).
  void copyFromDist(const DistVector& src);

  /// Reallocate the replicas over `newPg` (contents zeroed; restore from a
  /// snapshot to recover data). Paper §IV-A: for duplicated classes,
  /// changing the place group just means duplicating over a different
  /// number of places.
  void remake(const apgas::PlaceGroup& newPg);

  /// Algorithm-based recovery: reallocate over `newPg` and repopulate
  /// every replica from a surviving replica of the CURRENT group — no
  /// snapshot involved. The data flow is survivor -> newPg(0) ->
  /// broadcast. Throws DeadPlaceException when no member of the current
  /// group is live (then only a checkpoint can recover the data).
  void remakeFromSurvivor(const apgas::PlaceGroup& newPg);

  // -- Snapshottable ------------------------------------------------------
  /// Saves ONE replica (they are identical) from the first member, which
  /// the store doubles as usual (local + next place). Checkpoint cost is
  /// therefore independent of the replica count.
  [[nodiscard]] std::shared_ptr<resilient::Snapshot> makeSnapshot()
      const override;
  /// Every place (re)loads its replica from the saved copy.
  void restoreSnapshot(const resilient::Snapshot& snapshot) override;

 private:
  DupVector(long n, apgas::PlaceGroup pg);

  long n_ = 0;
  apgas::PlaceGroup pg_;
  apgas::PlaceLocalHandle<la::Vector> plh_;
  SyncAlgorithm syncAlg_ = SyncAlgorithm::Flat;
};

}  // namespace rgml::gml
