// Unit tests for PlaceGroup: ordering, indexing, ring order, dead-place
// filtering and spare replacement — the machinery every restoration mode
// builds on.
#include <gtest/gtest.h>

#include "apgas/place_group.h"
#include "apgas/runtime.h"

namespace rgml::apgas {
namespace {

class PlaceGroupTest : public ::testing::Test {
 protected:
  void SetUp() override { Runtime::init(8); }
};

TEST_F(PlaceGroupTest, WorldCoversAllPlaces) {
  auto pg = PlaceGroup::world();
  EXPECT_EQ(pg.size(), 8u);
  EXPECT_EQ(pg(0).id(), 0);
  EXPECT_EQ(pg(7).id(), 7);
}

TEST_F(PlaceGroupTest, FirstPlaces) {
  auto pg = PlaceGroup::firstPlaces(3);
  EXPECT_EQ(pg.ids(), (std::vector<PlaceId>{0, 1, 2}));
}

TEST_F(PlaceGroupTest, IndexOfReflectsOrder) {
  PlaceGroup pg({5, 2, 7});
  EXPECT_EQ(pg.indexOf(Place(5)), 0);
  EXPECT_EQ(pg.indexOf(Place(2)), 1);
  EXPECT_EQ(pg.indexOf(Place(7)), 2);
  EXPECT_EQ(pg.indexOf(Place(4)), -1);
  EXPECT_TRUE(pg.contains(Place(2)));
  EXPECT_FALSE(pg.contains(Place(0)));
}

TEST_F(PlaceGroupTest, IndexOutOfRangeThrows) {
  PlaceGroup pg({1, 2});
  EXPECT_THROW(pg(2), ApgasError);
}

TEST_F(PlaceGroupTest, NextIsRingOrder) {
  PlaceGroup pg({1, 4, 6});
  EXPECT_EQ(pg.next(Place(1)).id(), 4);
  EXPECT_EQ(pg.next(Place(4)).id(), 6);
  EXPECT_EQ(pg.next(Place(6)).id(), 1);  // wraps
  EXPECT_THROW(pg.next(Place(0)), ApgasError);
}

TEST_F(PlaceGroupTest, FilterDeadPreservesOrderAndIds) {
  PlaceGroup pg({1, 2, 3, 4});
  Runtime::world().kill(2);
  Runtime::world().kill(4);
  auto live = pg.filterDead();
  // Paper §IV-B1: identifiers of the remaining places are unchanged, but
  // indices shift after filtering out the dead ones.
  EXPECT_EQ(live.ids(), (std::vector<PlaceId>{1, 3}));
  EXPECT_EQ(live.indexOf(Place(3)), 1);  // was index 2
}

TEST_F(PlaceGroupTest, DeadPlacesQuery) {
  PlaceGroup pg({1, 2, 3});
  EXPECT_FALSE(pg.hasDeadPlaces());
  Runtime::world().kill(3);
  EXPECT_TRUE(pg.hasDeadPlaces());
  EXPECT_EQ(pg.deadPlaces(), (std::vector<PlaceId>{3}));
}

TEST_F(PlaceGroupTest, ReplaceDeadSubstitutesInOrder) {
  PlaceGroup pg({1, 2, 3});
  Runtime::world().kill(2);
  auto replaced = pg.replaceDead({6, 7});
  EXPECT_EQ(replaced.ids(), (std::vector<PlaceId>{1, 6, 3}));
  EXPECT_EQ(replaced.size(), pg.size());
}

TEST_F(PlaceGroupTest, ReplaceDeadSkipsDeadSpares) {
  PlaceGroup pg({1, 2});
  Runtime::world().kill(2);
  Runtime::world().kill(6);
  auto replaced = pg.replaceDead({6, 7});
  EXPECT_EQ(replaced.ids(), (std::vector<PlaceId>{1, 7}));
}

TEST_F(PlaceGroupTest, ReplaceDeadDropsWhenOutOfSpares) {
  PlaceGroup pg({1, 2, 3});
  Runtime::world().kill(1);
  Runtime::world().kill(3);
  auto replaced = pg.replaceDead({7});
  // One spare for two dead members: the second is dropped (shrink
  // fallback, as the paper specifies when failures exceed spares).
  EXPECT_EQ(replaced.ids(), (std::vector<PlaceId>{7, 2}));
}

TEST_F(PlaceGroupTest, ReplaceDeadWithoutFailuresIsIdentity) {
  PlaceGroup pg({1, 2, 3});
  auto replaced = pg.replaceDead({6, 7});
  EXPECT_EQ(replaced, pg);
}

TEST_F(PlaceGroupTest, EqualityIsElementwise) {
  EXPECT_EQ(PlaceGroup({1, 2}), PlaceGroup({1, 2}));
  EXPECT_FALSE(PlaceGroup({1, 2}) == PlaceGroup({2, 1}));
}

}  // namespace
}  // namespace rgml::apgas
