// Tests for the disk-staged checkpoints: real files, real serialisation,
// and survival of failures that defeat the in-memory double storage.
#include <gtest/gtest.h>

#include <filesystem>

#include "apgas/runtime.h"
#include "gml/dist_block_matrix.h"
#include "gml/dist_vector.h"
#include "la/rand.h"
#include "resilient/disk_checkpoint.h"

namespace rgml::resilient {
namespace {

using apgas::Place;
using apgas::PlaceGroup;
using apgas::Runtime;

class DiskCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Runtime::init(4);
    dir_ = std::filesystem::temp_directory_path() /
           ("rgml_disk_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(DiskCheckpointTest, DistVectorRoundTripThroughDisk) {
  auto pg = PlaceGroup::world();
  auto v = gml::DistVector::make(23, pg);
  v.initRandom(1);
  la::Vector before(23);
  v.copyTo(before);

  auto snapshot = v.makeSnapshot();
  const std::size_t written = persistToDisk(*snapshot, dir_);
  EXPECT_GT(written, 0u);
  snapshot.reset();  // the in-memory snapshot is gone

  auto restored = loadFromDisk(dir_, pg);
  v.init(0.0);
  v.restoreSnapshot(*restored);
  la::Vector after(23);
  v.copyTo(after);
  EXPECT_EQ(after, before);
}

TEST_F(DiskCheckpointTest, DenseMatrixRoundTripWithGridMeta) {
  auto pg = PlaceGroup::world();
  auto a = gml::DistBlockMatrix::makeDense(16, 5, 8, 1, 4, 1, pg);
  a.initRandom(2);
  la::DenseMatrix before = a.toDense();

  auto snapshot = a.makeSnapshot();
  persistToDisk(*snapshot, dir_);
  snapshot.reset();

  auto restored = loadFromDisk(dir_, pg);
  ASSERT_NE(restored->meta(), nullptr);  // the grid survived
  a.initRandom(99);
  a.restoreSnapshot(*restored);
  EXPECT_EQ(a.toDense(), before);
}

TEST_F(DiskCheckpointTest, SparseMatrixRepartitionedRestoreFromDisk) {
  auto pg = PlaceGroup::firstPlaces(4);
  auto a = gml::DistBlockMatrix::makeSparse(24, 24, 8, 1, 4, 1, 3, pg);
  auto global = la::makeUniformSparse(24, 24, 3, 3);
  a.initFromCSR(global);
  auto snapshot = a.makeSnapshot();
  persistToDisk(*snapshot, dir_);
  snapshot.reset();

  Runtime::world().kill(2);
  a.remakeRebalance(pg.filterDead());
  auto restored = loadFromDisk(dir_, pg.filterDead());
  a.restoreSnapshot(*restored);
  for (long i = 0; i < 24; ++i) {
    for (long j = 0; j < 24; ++j) EXPECT_EQ(a.at(i, j), global.at(i, j));
  }
}

TEST_F(DiskCheckpointTest, SurvivesAdjacentDoubleFailure) {
  // The scenario the in-memory double storage cannot survive: both the
  // primary and the backup holder of a value die. The disk copy doesn't
  // care.
  auto pg = PlaceGroup::world();
  auto v = gml::DistVector::make(12, pg);
  v.initRandom(4);
  la::Vector before(12);
  v.copyTo(before);

  auto snapshot = v.makeSnapshot();
  persistToDisk(*snapshot, dir_);

  Runtime::world().kill(1);
  Runtime::world().kill(2);  // adjacent: in-memory copy of segment 1 lost
  EXPECT_FALSE(snapshot->contains(1));

  auto live = pg.filterDead();
  v.remake(live);
  auto restored = loadFromDisk(dir_, live);
  v.restoreSnapshot(*restored);
  la::Vector after(12);
  v.copyTo(after);
  EXPECT_EQ(after, before);
}

TEST_F(DiskCheckpointTest, PersistChargesDiskTime) {
  Runtime& rt = Runtime::world();
  auto v = gml::DistVector::make(1000, PlaceGroup::world());
  v.initRandom(5);
  auto snapshot = v.makeSnapshot();
  const double t0 = rt.time();
  persistToDisk(*snapshot, dir_);
  const double elapsed = rt.time() - t0;
  // At least one diskLatency per entry.
  EXPECT_GE(elapsed, 4 * rt.costModel().diskLatency);
}

TEST_F(DiskCheckpointTest, RepeatedPersistOverwrites) {
  auto pg = PlaceGroup::world();
  auto v = gml::DistVector::make(8, pg);
  v.init(1.0);
  persistToDisk(*v.makeSnapshot(), dir_);
  v.init(2.0);
  persistToDisk(*v.makeSnapshot(), dir_);

  auto restored = loadFromDisk(dir_, pg);
  v.init(0.0);
  v.restoreSnapshot(*restored);
  EXPECT_EQ(v.at(0), 2.0);  // the second snapshot won
}

}  // namespace
}  // namespace rgml::resilient
