// RESILIENT restarted GMRES(m) on a sparse nonsymmetric banded system
// A x = b — the second app of the Krylov suite.
//
// step() runs ONE restart cycle (m inner Arnoldi steps + the
// least-squares update of x), so the persistent state between steps is
// just the iterate x plus two scalars: the Krylov basis lives and dies
// inside a cycle. That makes GMRES the cheapest app to checkpoint and
// the best case for algorithm-based recovery — on a failure, A and b are
// reloaded from the replicated store, x is re-broadcast from any
// surviving replica, the ILU(0) preconditioner is refactored
// deterministically from A's values, and the run continues from the
// CURRENT cycle with zero rollback (supportsAlgorithmRecovery() ==
// true). The same boundary-kill consistency requirement as CgResilient
// applies: the first collective of a cycle touches only scratch, so
// iteration-boundary failures surface before x mutates; mid-step
// dispatch kills need the rollback modes.
#pragma once

#include <cstdint>

#include "framework/resilient_executor.h"
#include "gml/dist_block_matrix.h"
#include "gml/dist_vector.h"
#include "gml/dup_vector.h"
#include "gml/solvers.h"
#include "resilient/snapshottable_scalars.h"

namespace rgml::apps {

struct GmresResilientConfig {
  long nPerPlace = 16;      ///< unknowns per place (n = nPerPlace * places)
  long band = 2;            ///< half-bandwidth of the band matrix
  long blocksPerPlace = 2;  ///< row blocks per place in A
  long restart = 5;         ///< m: Arnoldi steps per cycle
  long cycles = 10;         ///< restart cycles to run (one per step())
  std::uint64_t seed = 91;
};

class GmresResilient final : public framework::ResilientIterativeApp {
 public:
  GmresResilient(const GmresResilientConfig& config,
                 const apgas::PlaceGroup& pg);

  void init();

  // -- framework programming model ---------------------------------------
  [[nodiscard]] bool isFinished() override;
  void step() override;
  void checkpoint(resilient::AppResilientStore& store) override;
  void restore(const apgas::PlaceGroup& newPlaces,
               resilient::AppResilientStore& store, long snapshotIter,
               framework::RestoreMode mode) override;
  [[nodiscard]] bool supportsAlgorithmRecovery() const override {
    return true;
  }

  /// Preconditioned residual norm after the last completed cycle.
  [[nodiscard]] double convergenceMetric() override { return residual_; }

  [[nodiscard]] long iteration() const noexcept { return iteration_; }
  [[nodiscard]] double residual() const noexcept { return residual_; }
  [[nodiscard]] const gml::DupVector& solution() const noexcept {
    return x_;
  }
  [[nodiscard]] const gml::DistBlockMatrix& matrix() const noexcept {
    return A_;
  }
  [[nodiscard]] const apgas::PlaceGroup& places() const noexcept {
    return pg_;
  }

 private:
  GmresResilientConfig config_;
  apgas::PlaceGroup pg_;

  gml::DistBlockMatrix A_;  ///< read-only: saveReadOnly at checkpoints
  gml::DistVector b_;       ///< read-only
  gml::DupVector x_;
  gml::Ilu0Preconditioner M_;                ///< refactored from A on restore
  resilient::SnapshottableScalars scalars_;  ///< {residual, iteration}

  double residual_ = 0.0;
  long iteration_ = 0;
};

}  // namespace rgml::apps
