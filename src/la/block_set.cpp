#include "la/block_set.h"

#include <algorithm>

namespace rgml::la {

MatrixBlock* BlockSet::find(long rb, long cb) {
  for (auto& b : blocks_) {
    if (b.blockRow() == rb && b.blockCol() == cb) return &b;
  }
  return nullptr;
}

const MatrixBlock* BlockSet::find(long rb, long cb) const {
  for (const auto& b : blocks_) {
    if (b.blockRow() == rb && b.blockCol() == cb) return &b;
  }
  return nullptr;
}

std::size_t BlockSet::bytes() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.bytes();
  return total;
}

double BlockSet::multFlops() const {
  double total = 0.0;
  for (const auto& b : blocks_) total += b.multFlops();
  return total;
}

std::uint64_t BlockSet::maxVersion() const {
  std::uint64_t v = 0;
  for (const auto& b : blocks_) v = std::max(v, b.version());
  return v;
}

}  // namespace rgml::la
