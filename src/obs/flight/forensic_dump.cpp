#include "obs/flight/forensic_dump.h"

#include <iomanip>
#include <sstream>

#include "obs/json_util.h"

namespace rgml::obs::flight {

namespace {
std::string num(double v) {
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}
}  // namespace

void writeForensicJson(std::ostream& os, const FlightRecorder& recorder,
                       const StallWatchdog* watchdog) {
  os << "{\"flight\": {\"places\": " << recorder.places()
     << ", \"ring_capacity\": " << recorder.ringCapacity()
     << ",\n  \"lanes\": [";
  const auto lanes = recorder.snapshotLanes();
  bool firstLane = true;
  for (const auto& lane : lanes) {
    os << (firstLane ? "\n" : ",\n") << "    {\"label\": ";
    writeJsonString(os, lane.label);
    os << ", \"recorded\": " << lane.recorded
       << ", \"dropped\": " << lane.dropped << ", \"events\": [";
    bool firstEvent = true;
    for (const Event& e : lane.events) {
      os << (firstEvent ? "\n" : ",\n") << "      {\"t\": " << num(e.t)
         << ", \"kind\": \"" << toString(e.kind)
         << "\", \"queue\": " << e.queue << ", \"depth\": " << e.depth
         << ", \"value\": " << num(e.value) << "}";
      firstEvent = false;
    }
    os << (firstEvent ? "]}" : "\n    ]}");
    firstLane = false;
  }
  os << (firstLane ? "],\n" : "\n  ],\n") << "  \"progress\": [";
  bool firstRow = true;
  auto progressRow = [&](int queue) {
    const FlightRecorder::ProgressSnapshot snap = recorder.progress(queue);
    os << (firstRow ? "\n" : ",\n") << "    {\"queue\": " << queue
       << ", \"enqueues\": " << snap.enqueues
       << ", \"dequeues\": " << snap.dequeues
       << ", \"depth\": " << snap.depth
       << ", \"dead\": " << (snap.dead ? 1 : 0) << "}";
    firstRow = false;
  };
  for (int p = 0; p < recorder.places(); ++p) progressRow(p);
  progressRow(kCtrlQueue);
  os << (firstRow ? "]" : "\n  ]");
  if (watchdog != nullptr) {
    os << ",\n  \"watchdog\": {\"period_seconds\": "
       << num(watchdog->periodSeconds()) << ", \"samples\": [";
    bool firstSample = true;
    for (const auto& sample : watchdog->samples()) {
      os << (firstSample ? "\n" : ",\n") << "    {\"t\": " << num(sample.t)
         << ", \"index\": " << sample.index << ", \"rows\": [";
      bool first = true;
      for (const auto& row : sample.rows) {
        os << (first ? "" : ", ") << "{\"queue\": " << row.queue
           << ", \"depth\": " << row.depth
           << ", \"enqueues\": " << row.enqueues
           << ", \"dequeues\": " << row.dequeues
           << ", \"dead\": " << (row.dead ? 1 : 0) << "}";
        first = false;
      }
      os << "]}";
      firstSample = false;
    }
    os << (firstSample ? "]" : "\n  ]") << ", \"verdicts\": [";
    bool firstVerdict = true;
    for (const auto& v : watchdog->verdicts()) {
      os << (firstVerdict ? "\n" : ",\n") << "    {\"t\": " << num(v.t)
         << ", \"sample\": " << v.sampleIndex << ", \"queue\": " << v.queue
         << ", \"depth\": " << v.depth << ", \"dequeues\": " << v.dequeues
         << ", \"detail\": ";
      writeJsonString(os, v.detail);
      os << "}";
      firstVerdict = false;
    }
    os << (firstVerdict ? "]}" : "\n  ]}");
  }
  os << "}}";
}

std::string forensicJson(const FlightRecorder& recorder,
                         const StallWatchdog* watchdog) {
  std::ostringstream os;
  writeForensicJson(os, recorder, watchdog);
  return os.str();
}

}  // namespace rgml::obs::flight
