#include "resilient/snapshot.h"

#include "apgas/runtime.h"

namespace rgml::resilient {

using apgas::Place;
using apgas::PlaceId;
using apgas::Runtime;
using apgas::SnapshotLostException;

Snapshot::Snapshot(apgas::PlaceGroup pg) : pg_(std::move(pg)) {
  if (pg_.empty()) {
    throw apgas::ApgasError("Snapshot: empty place group");
  }
  killToken_ = Runtime::world().addKillListener(
      [this](PlaceId p) { onPlaceDeath(p); });
}

Snapshot::~Snapshot() {
  if (Runtime::initialized()) {
    Runtime::world().removeKillListener(killToken_);
  }
}

void Snapshot::onPlaceDeath(PlaceId p) {
  for (auto& [key, entry] : entries_) {
    if (entry.primaryPlace == p) entry.primary.reset();
    if (entry.backupPlace == p) entry.backup.reset();
  }
}

void Snapshot::save(long key, std::shared_ptr<const SnapshotValue> value,
                    std::uint64_t version) {
  Runtime& rt = Runtime::world();
  const Place saver = rt.here();
  if (pg_.indexOf(saver) < 0) {
    throw apgas::ApgasError(
        "Snapshot::save: saving place is not in the snapshot's group");
  }
  const Place backup = pg_.next(saver);
  // Uniform cost from any place: serialising the local copy plus one
  // remote transfer for the backup (paper §IV-B1).
  rt.chargeSerialization(value->bytes());
  if (backup != saver) rt.chargeComm(backup, value->bytes());

  Entry entry;
  entry.primary = value;
  entry.primaryPlace = saver.id();
  if (backup != saver) {
    entry.backup = value;  // shared immutable payload simulates the copy
    entry.backupPlace = backup.id();
  }
  entry.version = version;
  entries_[key] = std::move(entry);
}

bool Snapshot::carryForward(long key, const Snapshot& prev,
                            std::uint64_t expectedVersion) {
  Runtime& rt = Runtime::world();
  if (pg_.indexOf(rt.here()) < 0) {
    throw apgas::ApgasError(
        "Snapshot::carryForward: carrying place is not in the snapshot's "
        "group");
  }
  auto it = prev.entries_.find(key);
  if (it == prev.entries_.end()) return false;
  const Entry& old = it->second;
  if (old.version != expectedVersion) return false;
  // Carry only fully intact entries: a copy lost to an earlier failure
  // must be replaced by a fresh save, or the carried entry would keep
  // running with reduced redundancy forever.
  if (!old.primary) return false;
  if (old.backupPlace != apgas::kInvalidPlace && !old.backup) return false;

  // The existing copies are adopted wholesale (shared immutable payloads,
  // same holder places): no data moves, so no cost is charged — this is
  // the entire win of the delta checkpoint.
  Entry entry = old;
  entry.carried = true;
  entries_[key] = std::move(entry);
  return true;
}

bool Snapshot::carryForwardAll(const Snapshot& prev) {
  for (const auto& [key, old] : prev.entries_) {
    if (!old.primary) return false;
    if (old.backupPlace != apgas::kInvalidPlace && !old.backup) return false;
  }
  for (const auto& [key, old] : prev.entries_) {
    Entry entry = old;
    entry.carried = true;
    entries_[key] = std::move(entry);
  }
  return true;
}

std::uint64_t Snapshot::savedVersion(long key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.version;
}

std::uint64_t Snapshot::versionSum() const {
  std::uint64_t sum = 0;
  for (const auto& [key, entry] : entries_) sum += entry.version;
  return sum;
}

bool Snapshot::isCarried(long key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.carried;
}

Snapshot::Located Snapshot::locate(long key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw apgas::ApgasError("Snapshot: no entry for key " +
                            std::to_string(key));
  }
  const Entry& e = it->second;
  const Runtime& rt = Runtime::world();
  const Place here = rt.here();
  // Prefer a copy on the loading place (cheap local load).
  if (e.primary && e.primaryPlace == here.id()) {
    return {e.primary, Place(e.primaryPlace)};
  }
  if (e.backup && e.backupPlace == here.id()) {
    return {e.backup, Place(e.backupPlace)};
  }
  if (e.primary) return {e.primary, Place(e.primaryPlace)};
  if (e.backup) return {e.backup, Place(e.backupPlace)};
  throw SnapshotLostException(key);
}

std::shared_ptr<const SnapshotValue> Snapshot::load(long key) const {
  Located loc = locate(key);
  Runtime& rt = Runtime::world();
  // Materialising the value costs a deserialisation pass; a remote copy
  // additionally pays the transfer (synchronous fetch).
  if (loc.holder != rt.here()) {
    rt.chargeComm(loc.holder, loc.value->bytes());
  }
  rt.chargeSerialization(loc.value->bytes());
  return loc.value;
}

bool Snapshot::contains(long key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  return it->second.primary != nullptr || it->second.backup != nullptr;
}

std::vector<long> Snapshot::keys() const {
  std::vector<long> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

std::size_t Snapshot::entryBytes(const Entry& entry) {
  const SnapshotValue* v =
      entry.primary ? entry.primary.get() : entry.backup.get();
  return v == nullptr ? 0 : v->bytes();
}

std::size_t Snapshot::totalBytes() const {
  std::size_t total = 0;
  for (const auto& [key, entry] : entries_) total += entryBytes(entry);
  return total;
}

std::size_t Snapshot::freshBytes() const {
  std::size_t total = 0;
  for (const auto& [key, entry] : entries_) {
    if (!entry.carried) total += entryBytes(entry);
  }
  return total;
}

std::size_t Snapshot::carriedBytes() const {
  std::size_t total = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.carried) total += entryBytes(entry);
  }
  return total;
}

std::size_t Snapshot::numCarried() const {
  std::size_t count = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.carried) ++count;
  }
  return count;
}

}  // namespace rgml::resilient
