#include "apgas/fault_injector.h"

#include <algorithm>

#include "apgas/runtime.h"

namespace rgml::apgas {

void FaultInjector::killNow(PlaceId p) { Runtime::world().kill(p); }

void FaultInjector::killAtDispatch(long n, PlaceId victim) {
  if (n < 1) throw ApgasError("killAtDispatch: n must be >= 1");
  Runtime& rt = Runtime::world();
  bool install = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dispatchKills_.push_back(DispatchKill{rt.dispatchCount() + n, victim});
    if (!dispatchHookInstalled_) {
      dispatchHookInstalled_ = true;
      install = true;
    }
  }
  if (install) {
    // One shared hook serves every armed kill; the runtime invokes a
    // *copy* of it, so self-uninstallation from onDispatch is safe.
    rt.setDispatchHook([this](long count) { onDispatch(count); });
  }
}

void FaultInjector::onDispatch(long count) {
  std::vector<PlaceId> victims;
  bool uninstall = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::erase_if(dispatchKills_, [&](const DispatchKill& k) {
      if (k.fireAt > count) return false;
      victims.push_back(k.victim);
      return true;
    });
    if (dispatchKills_.empty() && dispatchHookInstalled_) {
      dispatchHookInstalled_ = false;
      uninstall = true;
    }
  }
  Runtime& rt = Runtime::world();
  if (uninstall) rt.setDispatchHook({});
  for (PlaceId v : victims) {
    if (!rt.isDead(v)) rt.kill(v);
  }
}

void FaultInjector::killOnIteration(long iter, PlaceId victim) {
  std::lock_guard<std::mutex> lock(mu_);
  iterKills_.push_back(IterKill{iter, victim});
}

std::vector<PlaceId> FaultInjector::onIterationCompleted(long iter) {
  std::vector<PlaceId> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::erase_if(iterKills_, [&](const IterKill& k) {
      if (k.iter != iter) return false;
      victims.push_back(k.victim);
      return true;
    });
  }
  Runtime& rt = Runtime::world();
  for (PlaceId v : victims) rt.kill(v);
  return victims;
}

void FaultInjector::killOnRestoreAttempt(long attempt, PlaceId victim) {
  if (attempt < 1) {
    throw ApgasError("killOnRestoreAttempt: attempt must be >= 1");
  }
  std::lock_guard<std::mutex> lock(mu_);
  restoreKills_.push_back(RestoreKill{attempt, victim});
}

std::vector<PlaceId> FaultInjector::onRestoreAttempt(long attempt) {
  std::vector<PlaceId> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::erase_if(restoreKills_, [&](const RestoreKill& k) {
      if (k.attempt != attempt) return false;
      victims.push_back(k.victim);
      return true;
    });
  }
  Runtime& rt = Runtime::world();
  for (PlaceId v : victims) {
    if (!rt.isDead(v)) rt.kill(v);
  }
  return victims;
}

void FaultInjector::reset() {
  bool uninstall = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    iterKills_.clear();
    restoreKills_.clear();
    dispatchKills_.clear();
    uninstall = dispatchHookInstalled_;
    dispatchHookInstalled_ = false;
  }
  if (uninstall && Runtime::initialized()) {
    Runtime::world().setDispatchHook({});
  }
}

}  // namespace rgml::apgas
