#include "apps/gmres_resilient.h"

#include <cmath>
#include <vector>

#include "la/sparse_csr.h"

namespace rgml::apps {

using apgas::PlaceGroup;
using framework::RestoreMode;

namespace {
/// Deterministic NONSYMMETRIC diagonally dominant band matrix: lower and
/// upper off-diagonals decay at different rates, the diagonal carries a
/// small per-row variation. Dominance keeps the ILU(0) pivots healthy.
la::SparseCSR bandMatrix(long n, long band) {
  std::vector<long> rowPtr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<long> colIdx;
  std::vector<double> values;
  for (long i = 0; i < n; ++i) {
    const long lo = std::max(0L, i - band);
    const long hi = std::min(n - 1, i + band);
    for (long j = lo; j <= hi; ++j) {
      colIdx.push_back(j);
      const double d = static_cast<double>(std::labs(i - j));
      if (j == i) {
        values.push_back(2.0 * static_cast<double>(band) + 1.8 +
                         0.2 * static_cast<double>(i % 5));
      } else if (j < i) {
        values.push_back(-1.0 / (1.0 + d));
      } else {
        values.push_back(-0.6 / (1.0 + d));
      }
    }
    rowPtr[static_cast<std::size_t>(i) + 1] =
        static_cast<long>(colIdx.size());
  }
  return {n, n, std::move(rowPtr), std::move(colIdx), std::move(values)};
}
}  // namespace

GmresResilient::GmresResilient(const GmresResilientConfig& config,
                               const PlaceGroup& pg)
    : config_(config), pg_(pg) {}

void GmresResilient::init() {
  const long places = static_cast<long>(pg_.size());
  const long n = config_.nPerPlace * places;
  A_ = gml::DistBlockMatrix::makeSparse(
      n, n, config_.blocksPerPlace * places, 1, places, 1,
      2 * config_.band + 1, pg_);
  A_.initFromCSR(bandMatrix(n, config_.band));
  b_ = gml::DistVector::make(n, pg_);
  b_.initRandom(config_.seed + 1);
  x_ = gml::DupVector::make(n, pg_);
  x_.init(0.0);
  scalars_ = resilient::SnapshottableScalars(2, pg_);
  M_.setup(A_);
  residual_ = 0.0;
  iteration_ = 0;
}

bool GmresResilient::isFinished() { return iteration_ >= config_.cycles; }

void GmresResilient::step() {
  // One GMRES(m) cycle. tolerance 0 runs all m Arnoldi steps every cycle
  // (deterministic trajectory for the chaos harness); x is only updated
  // at the end of the cycle, after every collective has succeeded, which
  // is what makes iteration-boundary failures recoverable in place.
  const gml::SolveResult res =
      gml::gmres(A_, b_, x_, M_, config_.restart, 1, 0.0);
  residual_ = res.residual;
  ++iteration_;
}

void GmresResilient::checkpoint(resilient::AppResilientStore& store) {
  scalars_[0] = residual_;
  scalars_[1] = static_cast<double>(iteration_);
  store.startNewSnapshot();
  store.saveReadOnly(A_);
  store.saveReadOnly(b_);
  store.save(x_);
  store.save(scalars_);
  store.commit();
}

void GmresResilient::restore(const PlaceGroup& newPlaces,
                             resilient::AppResilientStore& store,
                             long snapshotIter, RestoreMode mode) {
  if (mode == RestoreMode::AlgorithmBased) {
    // No rollback: inputs from the replicated store, the iterate from a
    // surviving replica, the preconditioner refactored from A. The
    // scalar state (residual, iteration) lives on the host and simply
    // persists.
    A_.remakeShrink(newPlaces);
    store.restoreOnly(A_);
    b_.remake(newPlaces);
    store.restoreOnly(b_);
    x_.remakeFromSurvivor(newPlaces);
    scalars_.remake(newPlaces);
    pg_ = newPlaces;
    M_.setup(A_);
    return;
  }

  switch (mode) {
    case RestoreMode::Shrink:
    case RestoreMode::AlgorithmBased:  // handled above
      A_.remakeShrink(newPlaces);
      break;
    case RestoreMode::ShrinkRebalance:
      A_.remakeRebalance(newPlaces);
      break;
    case RestoreMode::ReplaceRedundant:
    case RestoreMode::ReplaceElastic:
      A_.remakeSameDist(newPlaces);
      break;
  }
  b_.remake(newPlaces);
  x_.remake(newPlaces);
  scalars_.remake(newPlaces);
  pg_ = newPlaces;

  store.restore();
  M_.setup(A_);

  residual_ = scalars_[0];
  iteration_ = static_cast<long>(scalars_[1]);
  if (iteration_ != snapshotIter) {
    throw apgas::ApgasError(
        "GmresResilient::restore: snapshot iteration mismatch");
  }
}

}  // namespace rgml::apps
