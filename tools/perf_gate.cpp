// perf_gate: performance regression gate over BENCH_*.json artifacts.
//
// Diffs freshly generated benchmark summaries against the committed
// baselines/ directory. Both sides are flattened to dotted leaf paths;
// numeric leaves must stay within the tolerance of the first matching
// rule in tolerances.json, string leaves must match exactly, and keys
// appearing on only one side fail the gate. The default tolerance is
// exact equality — the simulator is deterministic, so the tolerance
// file's job is to *ignore* the wall-clock section, not to loosen the
// simulated metrics.
//
// Usage:
//   perf_gate --baselines baselines BENCH_perfgate.json
//   perf_gate --baseline old.json fresh.json
//   perf_gate --baselines baselines --update-baselines BENCH_perfgate.json
//
// With --baselines DIR, each fresh file diffs against DIR/<basename> and
// the rules load from DIR/tolerances.json when present.
// --update-baselines copies the fresh files over their baselines instead
// of diffing (the EXPERIMENTS.md refresh workflow after an intentional
// performance or schema change).
//
// Exit status: 0 when every gate passes, 1 on any violation, 2 on
// usage/file/parse errors.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis/perf_gate.h"

namespace {

using rgml::obs::analysis::JsonError;
using rgml::obs::analysis::JsonValue;
using rgml::obs::analysis::ToleranceRule;

void usage(std::ostream& os) {
  os << "perf_gate — diff fresh BENCH_*.json against committed "
        "baselines\n\n"
        "  perf_gate --baselines DIR FRESH.json [FRESH2.json ...]\n"
        "  perf_gate --baseline BASE.json FRESH.json\n\n"
        "  --baselines DIR     committed baseline directory; each fresh\n"
        "                      file diffs against DIR/<basename>\n"
        "  --baseline FILE     explicit single baseline (one fresh file)\n"
        "  --tolerances FILE   tolerance rules (default:\n"
        "                      DIR/tolerances.json when it exists)\n"
        "  --update-baselines  copy fresh files over their baselines\n"
        "                      (refresh workflow) and exit 0\n";
}

std::string basenameOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool fileExists(const std::string& path) {
  return std::ifstream(path).good();
}

bool copyFile(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  if (!in) return false;
  std::ofstream out(to, std::ios::binary);
  if (!out) return false;
  out << in.rdbuf();
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baselinesDir;
  std::string baselineFile;
  std::string tolerancesPath;
  bool updateBaselines = false;
  std::vector<std::string> freshFiles;

  auto needValue = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << argv[i] << " requires a value\n";
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--baselines") {
      baselinesDir = needValue(i);
    } else if (arg == "--baseline") {
      baselineFile = needValue(i);
    } else if (arg == "--tolerances") {
      tolerancesPath = needValue(i);
    } else if (arg == "--update-baselines") {
      updateBaselines = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n\n";
      usage(std::cerr);
      return 2;
    } else {
      freshFiles.push_back(arg);
    }
  }
  if (freshFiles.empty() || (baselinesDir.empty() && baselineFile.empty())) {
    usage(std::cerr);
    return 2;
  }
  if (!baselineFile.empty() &&
      (freshFiles.size() != 1 || !baselinesDir.empty())) {
    std::cerr << "--baseline takes exactly one fresh file and excludes "
                 "--baselines\n";
    return 2;
  }

  auto baselinePathFor = [&](const std::string& fresh) {
    return baselineFile.empty()
               ? baselinesDir + "/" + basenameOf(fresh)
               : baselineFile;
  };

  if (updateBaselines) {
    for (const std::string& fresh : freshFiles) {
      const std::string target = baselinePathFor(fresh);
      if (!copyFile(fresh, target)) {
        std::cerr << "perf_gate: cannot copy " << fresh << " -> " << target
                  << '\n';
        return 2;
      }
      std::cout << "updated " << target << " from " << fresh << '\n';
    }
    return 0;
  }

  try {
    std::vector<ToleranceRule> rules;
    if (tolerancesPath.empty() && !baselinesDir.empty() &&
        fileExists(baselinesDir + "/tolerances.json")) {
      tolerancesPath = baselinesDir + "/tolerances.json";
    }
    if (!tolerancesPath.empty()) {
      rules = rgml::obs::analysis::loadToleranceRules(
          JsonValue::parseFile(tolerancesPath));
    }

    bool allPass = true;
    for (const std::string& fresh : freshFiles) {
      const std::string basePath = baselinePathFor(fresh);
      if (!fileExists(basePath)) {
        std::cerr << "perf_gate: no baseline " << basePath << " for "
                  << fresh
                  << " (seed it with --update-baselines and commit)\n";
        return 2;
      }
      const auto result = rgml::obs::analysis::diffBenchmarks(
          JsonValue::parseFile(basePath), JsonValue::parseFile(fresh),
          rules);
      std::cout << rgml::obs::analysis::formatGateResult(
          result, fresh + " vs " + basePath);
      allPass = allPass && result.pass();
    }
    return allPass ? 0 : 1;
  } catch (const JsonError& e) {
    std::cerr << "perf_gate: " << e.what() << '\n';
    return 2;
  }
}
