#include "la/ilu0.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "apgas/exceptions.h"

namespace rgml::la {

namespace {
/// Value-array index of column j within row i of `m`, or -1 when (i, j)
/// is not in the pattern. Column indices are strictly increasing per row,
/// so a binary search suffices.
long findInRow(const SparseCSR& m, long i, long j) {
  const auto& rowPtr = m.rowPtr();
  const auto& colIdx = m.colIdx();
  const auto first = colIdx.begin() + rowPtr[i];
  const auto last = colIdx.begin() + rowPtr[i + 1];
  const auto it = std::lower_bound(first, last, j);
  if (it == last || *it != j) return -1;
  return static_cast<long>(it - colIdx.begin());
}
}  // namespace

Ilu0 ilu0Factor(const SparseCSR& a) {
  if (a.rows() != a.cols()) {
    throw apgas::ApgasError("ilu0Factor: need a square matrix");
  }
  const long n = a.rows();
  Ilu0 f;
  f.lu = a;
  f.diagPos.assign(static_cast<std::size_t>(n), -1);

  // Work on copies of the index arrays (read-only) and a mutable value
  // vector we re-adopt at the end.
  const std::vector<long> rowPtr = f.lu.rowPtr();
  const std::vector<long> colIdx = f.lu.colIdx();
  std::vector<double> values = f.lu.values();

  for (long i = 0; i < n; ++i) {
    const long d = findInRow(f.lu, i, i);
    if (d < 0) {
      throw apgas::ApgasError("ilu0Factor: row " + std::to_string(i) +
                              " has no diagonal entry in the pattern");
    }
    f.diagPos[static_cast<std::size_t>(i)] = d;

    // IKJ update restricted to the pattern: eliminate the strict-lower
    // entries of row i using the already-factored rows k < i.
    for (long idx = rowPtr[i]; idx < rowPtr[i + 1]; ++idx) {
      const long k = colIdx[static_cast<std::size_t>(idx)];
      if (k >= i) break;
      const long dk = f.diagPos[static_cast<std::size_t>(k)];
      const double pivot = values[static_cast<std::size_t>(dk)];
      if (!(std::abs(pivot) >= std::numeric_limits<double>::min())) {
        throw apgas::ApgasError("ilu0Factor: zero pivot at row " +
                                std::to_string(k));
      }
      const double lik = values[static_cast<std::size_t>(idx)] / pivot;
      values[static_cast<std::size_t>(idx)] = lik;
      // Subtract lik * (row k's entries right of column k), where the
      // pattern of row i allows.
      const long rkEnd = rowPtr[k + 1];
      for (long kidx = dk + 1; kidx < rkEnd; ++kidx) {
        const long j = colIdx[static_cast<std::size_t>(kidx)];
        const long tij = findInRow(f.lu, i, j);
        if (tij >= 0) {
          values[static_cast<std::size_t>(tij)] -=
              lik * values[static_cast<std::size_t>(kidx)];
        }
      }
    }

    const double uii = values[static_cast<std::size_t>(d)];
    if (!(std::abs(uii) >= std::numeric_limits<double>::min()) ||
        !std::isfinite(uii)) {
      throw apgas::ApgasError("ilu0Factor: pivot degenerated at row " +
                              std::to_string(i));
    }
  }

  f.lu = SparseCSR(n, n, rowPtr, colIdx, std::move(values));
  return f;
}

void ilu0Solve(const Ilu0& f, const Vector& r, Vector& z) {
  const long n = f.lu.rows();
  if (r.size() != n || z.size() != n) {
    throw apgas::ApgasError("ilu0Solve: dimension mismatch");
  }
  const auto& rowPtr = f.lu.rowPtr();
  const auto& colIdx = f.lu.colIdx();
  const auto& values = f.lu.values();

  // Forward sweep: L y = r (L unit lower on the strict-lower pattern).
  for (long i = 0; i < n; ++i) {
    double acc = r[i];
    for (long idx = rowPtr[i]; idx < rowPtr[i + 1]; ++idx) {
      const long j = colIdx[static_cast<std::size_t>(idx)];
      if (j >= i) break;
      acc -= values[static_cast<std::size_t>(idx)] * z[j];
    }
    z[i] = acc;
  }
  // Backward sweep: U z = y.
  for (long i = n - 1; i >= 0; --i) {
    const long d = f.diagPos[static_cast<std::size_t>(i)];
    double acc = z[i];
    for (long idx = d + 1; idx < rowPtr[i + 1]; ++idx) {
      acc -= values[static_cast<std::size_t>(idx)] *
             z[colIdx[static_cast<std::size_t>(idx)]];
    }
    z[i] = acc / values[static_cast<std::size_t>(d)];
  }
}

}  // namespace rgml::la
