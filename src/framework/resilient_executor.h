// The resilient iterative application framework (paper §V).
//
// Applications implement the four-method programming model
// (isFinished / step / checkpoint / restore); the executor runs step() in a
// loop, checkpoints every `checkpointInterval` iterations through an
// AppResilientStore, and on a DeadPlaceException rolls the application back
// to the latest committed checkpoint using one of the restoration modes:
//
//   * Shrink            — continue on the surviving places; DistBlockMatrix
//                         keeps its grid (cheap block-by-block restore,
//                         load imbalance).
//   * ShrinkRebalance   — continue on the surviving places with a
//                         recalculated grid (expensive overlapping-region
//                         restore, even load).
//   * ReplaceRedundant  — a pre-allocated spare place stands in for the
//                         dead one (same distribution, cheapest restore;
//                         falls back to shrink when spares run out).
//   * ReplaceElastic    — (the paper's future work, implemented here) a
//                         brand-new place is created on demand to replace
//                         the dead one.
//   * AlgorithmBased    — no rollback at all: the app reconstructs the
//                         lost partition from the algorithm's own
//                         recurrence plus surviving replicas (read-only
//                         inputs come from the replicated store), and the
//                         run continues from the CURRENT iteration. Only
//                         apps that opt in via supportsAlgorithmRecovery()
//                         use it; others fall back to Shrink, mirroring
//                         the out-of-spares fallback of ReplaceRedundant.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "apgas/fault_injector.h"
#include "apgas/place_group.h"
#include "resilient/app_resilient_store.h"

namespace rgml::framework {

class ExecutionTrace;

enum class RestoreMode {
  Shrink,
  ShrinkRebalance,
  ReplaceRedundant,
  ReplaceElastic,
  AlgorithmBased,
};

[[nodiscard]] const char* toString(RestoreMode mode);

/// Thrown by ResilientExecutor::run when ExecutorConfig::maxSteps is
/// exhausted: the run was aborted as non-terminating, not completed.
class StepBudgetExceeded : public apgas::ApgasError {
 public:
  StepBudgetExceeded(long budget, long iterationsCompleted)
      : apgas::ApgasError("ResilientExecutor: step budget exceeded"),
        budget_(budget),
        iterationsCompleted_(iterationsCompleted) {}

  [[nodiscard]] long budget() const noexcept { return budget_; }
  [[nodiscard]] long iterationsCompleted() const noexcept {
    return iterationsCompleted_;
  }

 private:
  long budget_;
  long iterationsCompleted_;
};

/// The programming model applications implement (paper §V-A2).
class ResilientIterativeApp {
 public:
  virtual ~ResilientIterativeApp() = default;

  /// Termination condition (completed iterations, convergence, ...).
  [[nodiscard]] virtual bool isFinished() = 0;

  /// One iteration of the algorithm.
  virtual void step() = 0;

  /// The app's scalar convergence measure after the last step() (residual
  /// norm, inertia, rank delta, ...): smaller = more converged. NaN (the
  /// default) means the app does not expose one. The lossy-checkpoint
  /// harness uses it to measure iterations-to-reconverge after a restart
  /// from a bounded-error snapshot.
  [[nodiscard]] virtual double convergenceMetric() {
    return std::numeric_limits<double>::quiet_NaN();
  }

  /// Save the state-carrying GML objects into `store`
  /// (startNewSnapshot / save / saveReadOnly / commit).
  virtual void checkpoint(resilient::AppResilientStore& store) = 0;

  /// Roll back to the checkpoint of iteration `snapshotIter`: remake the
  /// GML objects over `newPlaces` (honouring `mode` for block matrices),
  /// then store.restore(). Must also rewind the application's own
  /// iteration/convergence state.
  virtual void restore(const apgas::PlaceGroup& newPlaces,
                       resilient::AppResilientStore& store, long snapshotIter,
                       RestoreMode mode) = 0;

  /// True when the app implements RestoreMode::AlgorithmBased in
  /// restore(): reconstructing the lost partition from the algorithm's
  /// recurrence + surviving data WITHOUT rewinding its iteration state
  /// (read-only inputs may be reloaded from `store`). The executor falls
  /// back to Shrink for apps that return false.
  [[nodiscard]] virtual bool supportsAlgorithmRecovery() const {
    return false;
  }
};

struct ExecutorConfig {
  apgas::PlaceGroup places;            ///< initial working group
  std::vector<apgas::PlaceId> spares;  ///< reserve for ReplaceRedundant
  long checkpointInterval = 10;        ///< iterations between checkpoints
  RestoreMode mode = RestoreMode::Shrink;
  long maxRestoreAttempts = 8;  ///< cascading-failure retry bound

  /// What each checkpoint ships (full / readonly-reuse / delta / lossy /
  /// delta+lossy); see resilient::CheckpointMode.
  resilient::CheckpointMode checkpointMode = resilient::CheckpointMode::Delta;

  /// Codec knobs for the lossy checkpoint modes (errorBound <= 0 =
  /// lossless compression only). Ignored unless usesLossy(checkpointMode).
  resilient::LossyConfig lossy;

  /// Snapshot replication factor k: copies kept per store entry, on k
  /// distinct ring places (clamped to each object's group size). Any
  /// k-1 simultaneous failures between checkpoints are survivable; k
  /// overlapping ones are fatal by design (UnrecoverableError). Default
  /// 2 — the paper's double in-memory storage.
  int replication = 2;

  /// Optional event sink: every step/checkpoint/failure/restore is
  /// recorded with its simulated time interval (see framework/trace.h).
  /// Not owned; must outlive the run.
  ExecutionTrace* trace = nullptr;

  /// Hard bound on total step() calls (including re-executed ones after a
  /// rollback); 0 = unlimited. When exceeded the executor throws
  /// StepBudgetExceeded — the chaos harness uses this to flag a fault
  /// schedule whose recovery never reaches termination (e.g. a restore
  /// that keeps rewinding) instead of hanging the sweep.
  long maxSteps = 0;

  /// Observer invoked after every completed iteration, before fault
  /// injection and checkpointing, with the just-completed logical
  /// iteration number. The chaos harness hangs per-iteration state
  /// digests and dispatch-counter samples off this hook; it may throw to
  /// abort the run (the exception propagates out of run()).
  std::function<void(long iteration)> iterationHook;

  /// Take a fresh checkpoint immediately after every successful restore.
  /// Closes a redundancy hole the paper's design leaves open: a snapshot
  /// saved with saveReadOnly() is reused across checkpoints, so after a
  /// failure its surviving copy is no longer doubled — a second failure
  /// hitting that copy's holder loses the data even though the application
  /// recovered in between. Costs one extra checkpoint per failure.
  bool checkpointAfterRestore = false;
};

/// Outcome of one executor run. Times are in the backend's clock domain:
/// simulated seconds on the Simulated backend, wall seconds on Threads.
struct RunStats {
  long stepsExecuted = 0;        ///< total step() calls (incl. re-executed)
  long iterationsCompleted = 0;  ///< logical iterations at termination
  long checkpointsTaken = 0;
  long failuresHandled = 0;
  /// Checkpoint iteration the most recent successful restore rolled back
  /// to; -1 when the run handled no failure. Backend-independent — the
  /// equivalence harness asserts it matches across Simulated and Threads.
  long lastRestoredTo = -1;
  double totalTime = 0.0;
  double checkpointTime = 0.0;
  double restoreTime = 0.0;
  apgas::PlaceGroup finalPlaces;
};

class ResilientExecutor {
 public:
  explicit ResilientExecutor(ExecutorConfig config);

  /// Runs `app` to completion, surviving place failures. An optional
  /// fault injector is consulted after every completed iteration
  /// (cooperative kills); failures raised mid-step are handled
  /// identically. Throws if recovery is impossible (no committed
  /// checkpoint, place 0 involved, snapshot data lost, or too many
  /// cascading failures).
  RunStats run(ResilientIterativeApp& app,
               apgas::FaultInjector* injector = nullptr);

  [[nodiscard]] const resilient::AppResilientStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] const apgas::PlaceGroup& currentPlaces() const noexcept {
    return places_;
  }

 private:
  /// Computes the post-failure group per the configured mode and tells the
  /// app to roll back. Returns the iteration the run continues from: the
  /// checkpoint iteration restored to, or `currentIter` unchanged when an
  /// AlgorithmBased recovery succeeded (no rollback). `injector` (may be
  /// null) is consulted at the start of every restore attempt so armed
  /// kill-during-restore faults fire mid-recovery.
  long handleFailure(ResilientIterativeApp& app,
                     apgas::FaultInjector* injector, long currentIter);

  ExecutorConfig config_;
  apgas::PlaceGroup places_;
  std::vector<apgas::PlaceId> spares_;
  resilient::AppResilientStore store_;
  long restoreAttempts_ = 0;  ///< cumulative over the current run
};

}  // namespace rgml::framework
