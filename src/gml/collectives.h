// Collective cost helpers shared by the distributed GML classes.
//
// GML's collectives in the evaluated version are *flat*: the root sends to
// (or receives from) every other member sequentially, so their virtual-time
// cost is linear in the group size. This is the driver of the paper's
// non-resilient weak-scaling growth (Figs. 2-4 baselines).
//
// Direction convention: Runtime::chargeComm charges the *current* place's
// clock for the full transfer and bumps the peer's clock to the arrival
// time. For gathers the root pulls, for broadcasts the root pushes; both
// serialise on the root's clock, which is the behaviour being modelled.
#pragma once

#include <cstddef>
#include <functional>

#include "apgas/place_group.h"

namespace rgml::gml {

/// Charge a flat broadcast of `bytes` from pg(rootIdx) to every other
/// member (root's clock advances once per member). Throws
/// DeadPlaceException if any member is dead. Must be called from the task
/// whose clock should observe the completed broadcast.
void chargeBroadcast(const apgas::PlaceGroup& pg, std::size_t rootIdx,
                     std::size_t bytes);

/// Charge a binomial-tree broadcast: ceil(log2(size)) rounds, the root's
/// clock paying one transfer per round. The fix for the flat collectives'
/// linear-in-places cost (the paper's non-resilient scaling bottleneck);
/// see bench/ablation_collectives.cpp.
void chargeTreeBroadcast(const apgas::PlaceGroup& pg, std::size_t rootIdx,
                         std::size_t bytes);

/// Charge a flat gather of `bytes` from every member to pg(rootIdx).
void chargeGather(const apgas::PlaceGroup& pg, std::size_t rootIdx,
                  std::size_t bytes);

/// Run `local(place, index)` at every member of `pg` (one finish), then
/// sum the per-place partial scalars with a flat gather at pg(rootIdx) and
/// return the total (as known by the calling task). Models GML's scalar
/// reductions (dot products, norms).
[[nodiscard]] double allReduceSum(
    const apgas::PlaceGroup& pg,
    const std::function<double(apgas::Place, long)>& local,
    std::size_t rootIdx = 0);

/// Generalised scalar reduction: runs `local` at every member, then folds
/// the per-place values with `combine` starting from `init`.
[[nodiscard]] double allReduce(
    const apgas::PlaceGroup& pg,
    const std::function<double(apgas::Place, long)>& local,
    const std::function<double(double, double)>& combine, double init,
    std::size_t rootIdx = 0);

}  // namespace rgml::gml
