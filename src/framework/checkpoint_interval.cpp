#include "framework/checkpoint_interval.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rgml::framework {

double youngInterval(double checkpointTime, double mttf) {
  if (checkpointTime < 0.0 || mttf <= 0.0) {
    throw std::invalid_argument(
        "youngInterval: need checkpointTime >= 0 and mttf > 0");
  }
  return std::sqrt(2.0 * checkpointTime * mttf);
}

long youngIntervalIterations(double checkpointTime, double mttf,
                             double iterationTime) {
  if (iterationTime <= 0.0) {
    throw std::invalid_argument(
        "youngIntervalIterations: iterationTime must be > 0");
  }
  const double interval = youngInterval(checkpointTime, mttf);
  const double ratio = interval / iterationTime;
  // Casting a double that exceeds long's range is undefined behaviour
  // (possible with a huge MTTF against a tiny iteration time), so clamp
  // first. 2^62 is exactly representable as a double, safely below
  // LONG_MAX, and still an absurdly large checkpoint interval.
  constexpr double kCeiling = 4611686018427387904.0;  // 2^62
  static_assert(kCeiling <=
                static_cast<double>(std::numeric_limits<long>::max() / 2 + 1));
  if (ratio >= kCeiling) return static_cast<long>(kCeiling);
  const long iterations = static_cast<long>(ratio);
  return iterations < 1 ? 1 : iterations;
}

}  // namespace rgml::framework
