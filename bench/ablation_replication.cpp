// Ablation: snapshot replication factor k.
//
// The paper's store keeps exactly two in-memory copies of every snapshot
// entry (primary + next place), which survives any single failure but
// loses data when a place and its ring neighbour die together. This
// ablation sweeps k in {2, 3, 4} on linreg and pagerank and reports the
// price and the payoff of each extra copy:
//
//   * replica MB/checkpoint — backup traffic fanned out per checkpoint
//     (the snapshot.replica_bytes counter: k-1 remote copies per entry);
//   * checkpoint ms         — steady-state simulated checkpoint time;
//   * survives k-1 kills    — an adjacent run of k-1 places killed in the
//     same instant, the worst case for ring placement: must recover;
//   * fatal at k kills      — one more simultaneous victim wipes every
//     replica of some entry: must fail cleanly (UnrecoverableError).
//
// Emits BENCH_replication.json for tools/perf_gate: the "deterministic"
// section holds simulated facts the gate diffs exactly; "wall" holds the
// machine-dependent fields its tolerances ignore.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "apgas/exceptions.h"
#include "apgas/fault_injector.h"
#include "apps/linreg_resilient.h"
#include "apps/pagerank_resilient.h"
#include "apps/workloads.h"
#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "resilient/app_resilient_store.h"

namespace {

using rgml::apgas::FaultInjector;
using rgml::apgas::PlaceGroup;
using rgml::apgas::Runtime;
using rgml::framework::ExecutorConfig;
using rgml::framework::ResilientExecutor;
using rgml::framework::RestoreMode;
using rgml::resilient::AppResilientStore;
using rgml::resilient::CheckpointMode;

constexpr int kPlaces = 6;
constexpr long kIterations = 12;
constexpr long kInterval = 4;
constexpr long kCheckpoints = 3;
constexpr long kStepsBetween = 2;

struct Cell {
  std::string app;
  int k = 2;
  double replicaMBPerCkpt = 0.0;  ///< backup bytes fanned out per checkpoint
  double payloadMBPerCkpt = 0.0;  ///< fresh payload (k-independent control)
  double checkpointMs = 0.0;      ///< mean simulated checkpoint time
  int survivesKMinus1 = 0;        ///< adjacent run of k-1 simultaneous kills
  int fatalAtK = 0;               ///< run of k kills fails cleanly
};

/// Checkpoint-cost leg: three full-mode checkpoints with real steps in
/// between (full mode isolates the replication overhead — the delta path
/// would hide it behind carried entries).
template <typename ResilientApp, typename Config>
void measureCheckpointCost(const Config& config, int k, Cell& cell) {
  Runtime::init(kPlaces, rgml::apgas::paperCalibratedCostModel(), true);
  ResilientApp app(config, PlaceGroup::world());
  app.init();
  Runtime& rt = Runtime::world();
  AppResilientStore store;
  store.setMode(CheckpointMode::Full);
  store.setReplication(k);

  rgml::obs::TraceSink sink;
  rgml::obs::SinkScope scope(&sink);
  double totalMs = 0.0;
  std::uint64_t payload = 0;
  for (long c = 1; c <= kCheckpoints; ++c) {
    for (long s = 0; s < kStepsBetween; ++s) app.step();
    const double t0 = rt.time();
    store.setIteration(c * kStepsBetween);
    app.checkpoint(store);
    totalMs += (rt.time() - t0) * 1e3;
    payload += store.lastCheckpointStats().freshBytes;
  }
  const auto replicaBytes = sink.metrics().counter("snapshot.replica_bytes");
  cell.replicaMBPerCkpt =
      static_cast<double>(replicaBytes) / 1e6 / kCheckpoints;
  cell.payloadMBPerCkpt = static_cast<double>(payload) / 1e6 / kCheckpoints;
  cell.checkpointMs = totalMs / kCheckpoints;
}

/// Survival leg: `kills` adjacent places die in the same instant, one
/// checkpoint interval into the run. Returns whether the executor
/// recovered and completed every iteration; a clean UnrecoverableError
/// counts as not-survived (anything else propagates — a divergence or
/// hang here is a bug, not a data point).
template <typename ResilientApp, typename Config>
bool runWithSimultaneousKills(Config config, int k, int kills) {
  config.iterations = kIterations;
  Runtime::init(kPlaces, rgml::apgas::paperCalibratedCostModel(), true);
  ResilientApp app(config, PlaceGroup::world());
  app.init();

  FaultInjector injector;
  for (int d = 0; d < kills; ++d) {
    injector.killOnIteration(kInterval + 2, 1 + d);
  }

  ExecutorConfig cfg;
  cfg.places = PlaceGroup::world();
  cfg.checkpointInterval = kInterval;
  cfg.mode = RestoreMode::Shrink;
  cfg.replication = k;
  ResilientExecutor executor(cfg);
  try {
    const auto stats = executor.run(app, &injector);
    return stats.iterationsCompleted == kIterations;
  } catch (const rgml::apgas::UnrecoverableError&) {
    return false;
  }
}

template <typename ResilientApp, typename Config>
Cell measureCell(const char* name, const Config& config, int k) {
  Cell cell;
  cell.app = name;
  cell.k = k;
  measureCheckpointCost<ResilientApp>(config, k, cell);
  cell.survivesKMinus1 =
      runWithSimultaneousKills<ResilientApp>(config, k, k - 1) ? 1 : 0;
  cell.fatalAtK =
      runWithSimultaneousKills<ResilientApp>(config, k, k) ? 0 : 1;
  return cell;
}

std::string jsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

bool writeBench(const std::string& path, const std::vector<Cell>& cells,
                std::size_t jobs, double wallSeconds) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  os << "{\n  \"replication_ablation\": {\n    \"deterministic\": {\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    os << "      \"" << c.app << ".k" << c.k << "\": {\n"
       << "        \"replica_mb_per_checkpoint\": "
       << jsonNum(c.replicaMBPerCkpt) << ",\n"
       << "        \"payload_mb_per_checkpoint\": "
       << jsonNum(c.payloadMBPerCkpt) << ",\n"
       << "        \"checkpoint_ms\": " << jsonNum(c.checkpointMs) << ",\n"
       << "        \"survives_k_minus_1_simultaneous_kills\": "
       << c.survivesKMinus1 << ",\n"
       << "        \"fatal_at_k_simultaneous_kills\": " << c.fatalAtK
       << "\n      }" << (i + 1 < cells.size() ? "," : "") << '\n';
  }
  os << "    },\n    \"wall\": {\n      \"jobs\": " << jobs
     << ",\n      \"wall_seconds\": " << jsonNum(wallSeconds)
     << "\n    }\n  }\n}\n";
  return true;
}

std::string benchOut(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-out") == 0) return argv[i + 1];
  }
  return "BENCH_replication.json";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rgml;
  const auto wall0 = std::chrono::steady_clock::now();
  const std::size_t jobs = bench::benchJobs(argc, argv);

  auto linreg = apps::benchLinRegConfig();
  linreg.features = 50;
  linreg.rowsPerPlace = 2000;
  auto pagerank = apps::benchPageRankConfig();
  pagerank.pagesPerPlace = 2000;

  const int ks[] = {2, 3, 4};
  std::vector<Cell> cells(6);
  harness::parallelFor(jobs, cells.size(), [&](std::size_t i) {
    apgas::WorldGuard guard;
    const int k = ks[i % 3];
    if (i < 3) {
      cells[i] = measureCell<apps::LinRegResilient>("linreg", linreg, k);
    } else {
      cells[i] =
          measureCell<apps::PageRankResilient>("pagerank", pagerank, k);
    }
  });

  std::printf("# Replication-factor ablation, %d places, interval %ld, "
              "%ld checkpoints (full mode)\n",
              kPlaces, kInterval, kCheckpoints);
  std::printf("%-9s %3s %11s %11s %8s %10s %8s\n", "app", "k", "replica-MB",
              "payload-MB", "ckpt-ms", "lives(k-1)", "dies(k)");
  for (const Cell& c : cells) {
    std::printf("%-9s %3d %11.2f %11.2f %8.2f %10s %8s\n", c.app.c_str(),
                c.k, c.replicaMBPerCkpt, c.payloadMBPerCkpt, c.checkpointMs,
                c.survivesKMinus1 ? "yes" : "NO",
                c.fatalAtK ? "yes" : "NO");
  }
  std::printf("# acceptance: every row survives k-1 adjacent simultaneous "
              "kills and dies cleanly at k; replica bytes grow ~(k-1)x the "
              "payload\n");

  const double wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  const std::string out = benchOut(argc, argv);
  if (out != "none" && !writeBench(out, cells, jobs, wallSeconds)) return 1;

  for (const Cell& c : cells) {
    if (!c.survivesKMinus1 || !c.fatalAtK) return 1;
  }
  return 0;
}
