#include "apps/logreg_resilient.h"

#include <cmath>

namespace rgml::apps {

using apgas::PlaceGroup;
using framework::RestoreMode;

LogRegResilient::LogRegResilient(const LogRegConfig& config,
                                 const PlaceGroup& pg)
    : config_(config), pg_(pg) {}

void LogRegResilient::init() {
  const long places = static_cast<long>(pg_.size());
  const long m = config_.rowsPerPlace * places;
  const long n = config_.features;
  x_ = gml::DistBlockMatrix::makeDense(
      m, n, config_.blocksPerPlace * places, 1, places, 1, pg_);
  x_.initRandom(config_.seed, -1.0, 1.0);
  y_ = gml::DistVector::make(m, pg_);
  y_.initRandom(config_.seed + 1);
  y_.map([](double v, long) { return v < 0.5 ? 0.0 : 1.0; }, 1.0);
  w_ = gml::DupVector::make(n, pg_);
  grad_ = gml::DupVector::make(n, pg_);
  hg_ = gml::DupVector::make(n, pg_);
  xw_ = gml::DistVector::make(m, pg_);
  tmp_ = gml::DistVector::make(m, pg_);
  scalars_ = resilient::SnapshottableScalars(2, pg_);

  w_.init(0.0);
  loss_ = 0.0;
  iteration_ = 0;
}

bool LogRegResilient::isFinished() {
  return iteration_ >= config_.iterations;
}

void LogRegResilient::step() {
  xw_.mult(x_, w_);

  tmp_.copyFrom(xw_);
  tmp_.map2(y_,
            [](double margin, double label, long) {
              const double signed_margin = (2.0 * label - 1.0) * margin;
              return std::log1p(std::exp(-signed_margin));
            },
            12.0);
  loss_ = tmp_.sum();

  tmp_.copyFrom(xw_);
  tmp_.map2(y_,
            [](double margin, double label, long) {
              return 1.0 / (1.0 + std::exp(-margin)) - label;
            },
            8.0);

  grad_.transMult(x_, tmp_);
  grad_.axpy(config_.lambda, w_);

  tmp_.mult(x_, grad_);
  tmp_.map2(xw_,
            [](double xg, double margin, long) {
              const double p = 1.0 / (1.0 + std::exp(-margin));
              return p * (1.0 - p) * xg;
            },
            10.0);
  hg_.transMult(x_, tmp_);
  hg_.axpy(config_.lambda, grad_);

  const double gg = grad_.dot(grad_);
  const double curvature = grad_.dot(hg_);
  const double step = curvature > 1e-30 ? gg / curvature : config_.eta;
  w_.axpy(-step, grad_);

  ++iteration_;
}

void LogRegResilient::checkpoint(resilient::AppResilientStore& store) {
  scalars_[0] = loss_;
  scalars_[1] = static_cast<double>(iteration_);
  store.startNewSnapshot();
  store.saveReadOnly(x_);
  store.saveReadOnly(y_);
  store.save(w_);
  store.save(scalars_);
  store.commit();
}

void LogRegResilient::restore(const PlaceGroup& newPlaces,
                              resilient::AppResilientStore& store,
                              long snapshotIter, RestoreMode mode) {
  switch (mode) {
    case RestoreMode::Shrink:
    case RestoreMode::AlgorithmBased:  // unreachable: executor falls back
      x_.remakeShrink(newPlaces);
      break;
    case RestoreMode::ShrinkRebalance:
      x_.remakeRebalance(newPlaces);
      break;
    case RestoreMode::ReplaceRedundant:
    case RestoreMode::ReplaceElastic:
      x_.remakeSameDist(newPlaces);
      break;
  }
  y_.remake(newPlaces);
  w_.remake(newPlaces);
  grad_.remake(newPlaces);
  hg_.remake(newPlaces);
  xw_.remake(newPlaces);
  tmp_.remake(newPlaces);
  scalars_.remake(newPlaces);
  pg_ = newPlaces;

  store.restore();

  loss_ = scalars_[0];
  iteration_ = static_cast<long>(scalars_[1]);
  if (iteration_ != snapshotIter) {
    throw apgas::ApgasError(
        "LogRegResilient::restore: snapshot iteration mismatch");
  }
}

}  // namespace rgml::apps
