file(REMOVE_RECURSE
  "CMakeFiles/solver_toolkit.dir/solver_toolkit.cpp.o"
  "CMakeFiles/solver_toolkit.dir/solver_toolkit.cpp.o.d"
  "solver_toolkit"
  "solver_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
