#include "obs/analysis/trace_load.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace rgml::obs::analysis {

namespace {

/// The keys the exporter writes into `args` from dedicated Span fields;
/// everything else round-trips into Span::args.
bool isStructuralArg(const std::string& key) {
  return key == "iteration" || key == "bytes" || key == "depth" ||
         key == "phase";
}

}  // namespace

std::vector<LoadedLane> loadChromeTrace(const JsonValue& root) {
  const JsonValue& events = root.at("traceEvents");
  std::map<int, LoadedLane> byPid;

  for (const JsonValue& ev : events.items()) {
    const std::string ph = ev.stringOr("ph", "");
    const int pid = static_cast<int>(ev.numberOr("pid", 0));
    LoadedLane& lane = byPid[pid];
    lane.pid = pid;

    if (ph == "M") {
      if (ev.stringOr("name", "") == "process_name") {
        if (const JsonValue* args = ev.find("args")) {
          lane.name = args->stringOr("name", "");
        }
      }
      continue;
    }
    if (ph != "X") continue;  // counters, flow events, ... not emitted

    Span s;
    s.name = ev.stringOr("name", "");
    const std::string cat = ev.stringOr("cat", "");
    if (!parseCategory(cat, s.category)) {
      throw JsonError("unknown span category \"" + cat + "\"");
    }
    // ts/dur are microseconds in the trace; Span carries seconds.
    const double ts = ev.numberOr("ts", 0.0);
    const double dur = ev.numberOr("dur", 0.0);
    s.startTime = ts / 1e6;
    s.endTime = (ts + dur) / 1e6;
    s.place = static_cast<int>(ev.numberOr("tid", 0));
    if (const JsonValue* args = ev.find("args")) {
      s.iteration = static_cast<long>(args->numberOr("iteration", -1));
      s.bytes =
          static_cast<std::uint64_t>(args->numberOr("bytes", 0.0));
      s.depth = static_cast<int>(args->numberOr("depth", 0));
      s.phase = args->stringOr("phase", "");
      for (const auto& [key, value] : args->members()) {
        if (!isStructuralArg(key) && value.isString()) {
          s.args.emplace_back(key, value.asString());
        }
      }
    }
    lane.spans.push_back(std::move(s));
  }

  std::vector<LoadedLane> lanes;
  lanes.reserve(byPid.size());
  for (auto& [pid, lane] : byPid) lanes.push_back(std::move(lane));
  return lanes;
}

std::vector<LoadedLane> loadChromeTraceFile(const std::string& path) {
  return loadChromeTrace(JsonValue::parseFile(path));
}

MetricsRegistry loadMetrics(const JsonValue& root) {
  MetricsRegistry reg;
  for (const auto& [name, value] : root.at("counters").members()) {
    reg.add(name, static_cast<std::uint64_t>(value.asNumber()));
  }
  for (const auto& [name, value] : root.at("gauges").members()) {
    reg.set(name, value.asNumber());
  }
  for (const auto& [name, value] : root.at("histograms").members()) {
    std::vector<double> bounds;
    for (const JsonValue& b : value.at("bounds").items()) {
      bounds.push_back(b.asNumber());
    }
    std::vector<long> buckets;
    for (const JsonValue& b : value.at("buckets").items()) {
      buckets.push_back(b.asLong());
    }
    try {
      Histogram h = Histogram::fromParts(bounds, std::move(buckets),
                                         value.at("count").asLong(),
                                         value.at("sum").asNumber());
      reg.histogram(name, std::move(bounds)) = std::move(h);
    } catch (const std::invalid_argument& e) {
      throw JsonError("histogram \"" + name + "\": " + e.what());
    }
  }
  return reg;
}

MetricsRegistry loadMetricsFile(const std::string& path) {
  return loadMetrics(JsonValue::parseFile(path));
}

}  // namespace rgml::obs::analysis
