// Parameterized property sweeps over the restore machinery:
//   * sparse DistBlockMatrix restore exactness across place counts,
//     victims, modes and sparsity;
//   * DistVector repartitioned restore across arbitrary old->new place
//     count pairs;
//   * snapshot recoverability for every single-victim position.
#include <gtest/gtest.h>

#include "apgas/runtime.h"
#include "gml/dist_block_matrix.h"
#include "gml/dist_vector.h"
#include "la/rand.h"

namespace rgml::gml {
namespace {

using apgas::Place;
using apgas::PlaceGroup;
using apgas::Runtime;

// ---- sparse restore sweep ----------------------------------------------------

struct SparseRestoreCase {
  int places;
  int victim;
  bool rebalance;
  long nnzPerRow;
};

class SparseRestoreProperty
    : public ::testing::TestWithParam<SparseRestoreCase> {};

TEST_P(SparseRestoreProperty, RestoreIsExact) {
  const auto cfg = GetParam();
  Runtime::init(cfg.places + 1);
  auto pg = PlaceGroup::firstPlaces(static_cast<std::size_t>(cfg.places));
  const long n = 12L * cfg.places;
  auto a = DistBlockMatrix::makeSparse(n, n, 2L * cfg.places, 1, cfg.places,
                                       1, cfg.nnzPerRow, pg);
  auto global = la::makeUniformSparse(
      n, n, cfg.nnzPerRow,
      static_cast<std::uint64_t>(cfg.places * 100 + cfg.victim));
  a.initFromCSR(global);
  auto snap = a.makeSnapshot();

  Runtime::world().kill(cfg.victim);
  auto live = pg.filterDead();
  if (cfg.rebalance) {
    a.remakeRebalance(live);
  } else {
    a.remakeShrink(live);
  }
  a.restoreSnapshot(*snap);
  for (long i = 0; i < n; ++i) {
    for (long j = 0; j < n; ++j) {
      ASSERT_EQ(a.at(i, j), global.at(i, j))
          << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseRestoreProperty,
    ::testing::Values(SparseRestoreCase{2, 1, false, 2},
                      SparseRestoreCase{2, 1, true, 2},
                      SparseRestoreCase{3, 1, true, 5},
                      SparseRestoreCase{4, 2, false, 3},
                      SparseRestoreCase{4, 2, true, 3},
                      SparseRestoreCase{5, 4, true, 8},
                      SparseRestoreCase{6, 3, false, 1},
                      SparseRestoreCase{6, 3, true, 1},
                      SparseRestoreCase{7, 1, true, 4},
                      SparseRestoreCase{8, 5, true, 6}));

// ---- vector resize sweep ------------------------------------------------------

class VectorResizeProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(VectorResizeProperty, RepartitionedRestoreIsExact) {
  const auto [oldPlaces, newPlaces] = GetParam();
  Runtime::init(std::max(oldPlaces, newPlaces));
  const long n = 91;  // prime-ish: misaligned segment boundaries
  auto v = DistVector::make(n, PlaceGroup::firstPlaces(
                                   static_cast<std::size_t>(oldPlaces)));
  v.initRandom(static_cast<std::uint64_t>(oldPlaces * 31 + newPlaces));
  la::Vector before(n);
  v.copyTo(before);
  auto snap = v.makeSnapshot();

  v.remake(PlaceGroup::firstPlaces(static_cast<std::size_t>(newPlaces)));
  v.restoreSnapshot(*snap);
  la::Vector after(n);
  v.copyTo(after);
  EXPECT_EQ(after, before);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VectorResizeProperty,
    ::testing::Values(std::pair<int, int>{1, 7}, std::pair<int, int>{7, 1},
                      std::pair<int, int>{2, 3}, std::pair<int, int>{3, 2},
                      std::pair<int, int>{4, 7}, std::pair<int, int>{7, 4},
                      std::pair<int, int>{5, 5},
                      std::pair<int, int>{6, 13},
                      std::pair<int, int>{13, 6}));

// ---- single-victim recoverability ------------------------------------------------

class VictimSweepProperty : public ::testing::TestWithParam<int> {};

TEST_P(VictimSweepProperty, AnySingleFailureIsRecoverable) {
  const int victim = GetParam();
  Runtime::init(6);
  auto pg = PlaceGroup::world();
  auto a = DistBlockMatrix::makeDense(24, 4, 12, 1, 6, 1, pg);
  a.initRandom(static_cast<std::uint64_t>(victim) + 1);
  la::DenseMatrix before = a.toDense();
  auto snap = a.makeSnapshot();

  Runtime::world().kill(victim);
  a.remakeShrink(pg.filterDead());
  a.restoreSnapshot(*snap);
  EXPECT_EQ(a.toDense(), before);
}

INSTANTIATE_TEST_SUITE_P(AllVictims, VictimSweepProperty,
                         ::testing::Range(1, 6));

}  // namespace
}  // namespace rgml::gml
