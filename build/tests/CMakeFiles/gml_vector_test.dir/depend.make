# Empty dependencies file for gml_vector_test.
# This may be replaced when dependencies are built.
